#include "sim/cache.h"

#include <bit>

#include "support/logging.h"

namespace protean {
namespace sim {

Cache::Cache(std::string name, const CacheConfig &cfg)
    : name_(std::move(name)), ways_(cfg.ways), lineBytes_(cfg.lineBytes)
{
    if (cfg.sizeBytes == 0 || cfg.ways == 0 || cfg.lineBytes == 0)
        fatal("cache %s: zero geometry parameter", name_.c_str());
    if (cfg.sizeBytes % (cfg.ways * cfg.lineBytes) != 0)
        fatal("cache %s: size %u not divisible by ways*line",
              name_.c_str(), cfg.sizeBytes);
    sets_ = cfg.sizeBytes / (cfg.ways * cfg.lineBytes);
    if (!std::has_single_bit(sets_))
        fatal("cache %s: set count %u is not a power of two",
              name_.c_str(), sets_);
    if (!std::has_single_bit(lineBytes_))
        fatal("cache %s: line size %u is not a power of two",
              name_.c_str(), lineBytes_);
    indexShift_ = static_cast<uint32_t>(std::countr_zero(lineBytes_));
    lines_.resize(static_cast<size_t>(sets_) * ways_);
    mruWay_.resize(sets_, 0);
}

uint64_t
Cache::lineAddr(uint64_t addr) const
{
    return addr >> indexShift_;
}

uint32_t
Cache::setIndex(uint64_t line_addr) const
{
    return static_cast<uint32_t>(line_addr & (sets_ - 1));
}

Cache::Line *
Cache::findLine(uint64_t line_addr)
{
    uint32_t si = setIndex(line_addr);
    Line *set = &lines_[static_cast<size_t>(si) * ways_];
    // MRU-way fast path: repeated touches to a hot line skip the
    // associative scan entirely.
    uint32_t m = mruWay_[si];
    if (set[m].valid && set[m].tag == line_addr)
        return &set[m];
    for (uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == line_addr) {
            mruWay_[si] = w;
            return &set[w];
        }
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(uint64_t line_addr) const
{
    const Line *set =
        &lines_[static_cast<size_t>(setIndex(line_addr)) * ways_];
    for (uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == line_addr)
            return &set[w];
    }
    return nullptr;
}

bool
Cache::access(uint64_t addr)
{
    ++stats_.accesses;
    Line *line = findLine(lineAddr(addr));
    if (line) {
        line->lastUse = useCounter_++;
        return true;
    }
    ++stats_.misses;
    return false;
}

void
Cache::fill(uint64_t addr, bool nonTemporal)
{
    uint64_t la = lineAddr(addr);
    if (findLine(la))
        return; // already resident (e.g. racing fills)
    Line *set = &lines_[static_cast<size_t>(setIndex(la)) * ways_];
    Line *victim = &set[0];
    for (uint32_t w = 0; w < ways_; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    victim->valid = true;
    victim->tag = la;
    mruWay_[setIndex(la)] = static_cast<uint32_t>(victim - set);
    if (nonTemporal) {
        // LRU-position insertion: next fill in this set evicts it
        // unless it is re-referenced first.
        victim->lastUse = 0;
        ++stats_.ntFills;
    } else {
        victim->lastUse = useCounter_++;
    }
}

bool
Cache::contains(uint64_t addr) const
{
    return findLine(lineAddr(addr)) != nullptr;
}

uint64_t
Cache::linesOwnedBy(uint64_t owner_base, uint64_t owner_span) const
{
    uint64_t lo = lineAddr(owner_base);
    uint64_t hi = lineAddr(owner_base + owner_span - 1);
    uint64_t n = 0;
    for (const auto &line : lines_) {
        if (line.valid && line.tag >= lo && line.tag <= hi)
            ++n;
    }
    return n;
}

} // namespace sim
} // namespace protean
