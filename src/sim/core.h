/**
 * @file
 * In-order simulated core.
 *
 * Single-issue, blocking loads. Each instruction costs one cycle
 * plus memory latency for loads. Calls use register windows: the
 * hardware call stack saves r4..r63, so compiled code carries no
 * callee-save sequences (see isa/minst.h).
 *
 * Two mechanisms external controllers use:
 *  - Napping: a duty-cycle throttle (the ReQoS/flux mechanism). With
 *    intensity f, the core sleeps for f of every nap period.
 *  - Stolen cycles: runtime work (dynamic compiles) charged to this
 *    core delays the host when they share a core.
 *
 * The core can also run in a binary-translation mode that models a
 *  DynamoRIO-style system's dispatch costs (Figure 4's baseline).
 */

#ifndef PROTEAN_SIM_CORE_H
#define PROTEAN_SIM_CORE_H

#include <array>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "isa/minst.h"
#include "sim/config.h"
#include "sim/hpm.h"
#include "sim/process.h"

namespace protean {
namespace sim {

class MemorySystem;

/** One simulated core. */
class Core
{
  public:
    Core(uint32_t id, const MachineConfig &cfg, MemorySystem &memsys);

    uint32_t id() const { return id_; }

    /** Bind a process and reset architectural state to its entry. */
    void bind(Process *proc);

    /** The bound process (may be null). */
    Process *process() { return proc_; }
    const Process *process() const { return proc_; }

    /** True when this core has runnable work. */
    bool runnable() const;

    /** Local time of this core. */
    uint64_t cycle() const { return cycle_; }

    /** Advance an idle core's clock (keeps spawn-time sane). */
    void syncIdleClock(uint64_t now);

    /**
     * Execute one instruction (or consume one nap/stolen interval).
     * Only call when runnable().
     */
    void step();

    /**
     * Execute instructions until cycle() >= horizon or the core stops
     * being runnable. Each iteration is exactly one step(), so the
     * observable state after run(h) equals stepping in a loop while
     * cycle() < h — the horizon-batched engine relies on this.
     */
    void run(uint64_t horizon);

    /** Current program counter (PC-sampling interface). */
    isa::CodeAddr pc() const { return pc_; }

    /** Register read (tests). */
    uint64_t reg(uint32_t r) const { return regs_[r]; }

    const HpmCounters &hpm() const { return hpm_; }

    /** Nap intensity in [0, 1]: fraction of each period slept. */
    void setNapIntensity(double f);
    double napIntensity() const { return napIntensity_; }

    /** Charge runtime work to this core. */
    void stealCycles(uint64_t cycles);

    /** Enable/disable the binary-translation execution mode. */
    void setBtConfig(const BtConfig &bt);

    /** Call-stack depth (tests). */
    size_t stackDepth() const { return stack_.size(); }

  private:
    static constexpr uint32_t kSavedRegs =
        isa::kNumMachineRegs - isa::kFirstGeneralReg;

    struct Frame
    {
        isa::CodeAddr ret;
        std::array<uint64_t, kSavedRegs> saved;
    };

    uint32_t id_;
    const MachineConfig &cfg_;
    MemorySystem &memsys_;

    Process *proc_ = nullptr;
    isa::CodeAddr pc_ = 0;
    std::array<uint64_t, isa::kNumMachineRegs> regs_{};
    std::vector<Frame> stack_;

    uint64_t cycle_ = 0;
    HpmCounters hpm_;

    double napIntensity_ = 0.0;
    uint64_t stolenBacklog_ = 0;

    BtConfig bt_;
    std::unordered_set<isa::CodeAddr> btBlocks_;

    /** Returns true if the core consumed a nap/stolen interval. */
    bool consumeThrottles();

    void execute(const isa::MInst &inst);
    uint64_t memAccess(uint64_t vaddr, bool nonTemporal);
    void doCall(isa::CodeAddr target);
    void doRet();
    void transferTo(isa::CodeAddr target, bool indirect);
    void halt();
};

} // namespace sim
} // namespace protean

#endif // PROTEAN_SIM_CORE_H
