/**
 * @file
 * In-order simulated core.
 *
 * Single-issue, blocking loads. Each instruction costs one cycle
 * plus memory latency for loads. Calls use register windows: the
 * hardware call stack saves r4..r63, so compiled code carries no
 * callee-save sequences (see isa/minst.h).
 *
 * Two mechanisms external controllers use:
 *  - Napping: a duty-cycle throttle (the ReQoS/flux mechanism). With
 *    intensity f, the core sleeps for f of every nap period.
 *  - Stolen cycles: runtime work (dynamic compiles) charged to this
 *    core delays the host when they share a core.
 *
 * The core can also run in a binary-translation mode that models a
 *  DynamoRIO-style system's dispatch costs (Figure 4's baseline).
 */

#ifndef PROTEAN_SIM_CORE_H
#define PROTEAN_SIM_CORE_H

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "isa/minst.h"
#include "sim/config.h"
#include "sim/hpm.h"
#include "sim/process.h"

namespace protean {
namespace sim {

class MemorySystem;

/**
 * Decoded superblock dispatch statistics. Core-local and engine-
 * dependent (the Step engine never dispatches superblocks), so they
 * are exposed through accessors only and must never be published to
 * the metrics registry — exports stay byte-identical across engines.
 */
struct SuperblockStats
{
    uint64_t hits = 0;          ///< Dispatches served from the cache.
    uint64_t misses = 0;        ///< Dispatches that decoded a block.
    uint64_t invalidations = 0; ///< Blocks retired by version bumps.
};

/**
 * A pending flip-effect watch: the runtime armed it when a variant
 * was dispatched for `func`, and it fires the first time control
 * transfers into the variant's code range [lo, hi). Firing at
 * `target == entry` is an entry flip (the function was re-entered
 * through the EVT); any other landing point means an OSR redirect
 * moved a mid-loop execution. Watches are pure observation: firing
 * costs zero modeled cycles, so arming them never perturbs the
 * simulation (byte-identical exports with watches on or off).
 */
struct FlipWatch
{
    uint64_t id = 0;        ///< Runtime-side correlation key.
    uint32_t func = 0;      ///< ir::FuncId being flipped.
    isa::CodeAddr lo = 0;   ///< Variant code range start (inclusive).
    isa::CodeAddr hi = 0;   ///< Variant code range end (exclusive).
    isa::CodeAddr entry = 0; ///< Variant entry point.
};

/** One simulated core. */
class Core
{
  public:
    /** Flip-watch fire callback: (watch id, was an OSR landing,
     *  core-local cycle at the transfer). */
    using FlipHook = std::function<void(uint64_t, bool, uint64_t)>;

    Core(uint32_t id, const MachineConfig &cfg, MemorySystem &memsys);

    uint32_t id() const { return id_; }

    /** Bind a process and reset architectural state to its entry. */
    void bind(Process *proc);

    /** The bound process (may be null). */
    Process *process() { return proc_; }
    const Process *process() const { return proc_; }

    /** True when this core has runnable work. */
    bool runnable() const;

    /** Local time of this core. */
    uint64_t cycle() const { return cycle_; }

    /** Advance an idle core's clock (keeps spawn-time sane). */
    void syncIdleClock(uint64_t now);

    /**
     * Execute one instruction (or consume one nap/stolen interval).
     * Only call when runnable().
     */
    void step();

    /**
     * Execute instructions until cycle() >= horizon or the core stops
     * being runnable. Each iteration is exactly one step(), so the
     * observable state after run(h) equals stepping in a loop while
     * cycle() < h — the horizon-batched engine relies on this. The
     * hot loop dispatches decoded superblocks: dense pre-resolved
     * MInst runs cached per start address and keyed on the process's
     * codeVersion() (stale blocks retire before the next dispatch).
     */
    void run(uint64_t horizon);

    /**
     * Fenced run for the joint multi-core window (DESIGN.md §13):
     * like run(horizon), but stop *before* executing any instruction
     * that touches the shared memory system (Load, Store, or the
     * CallIndirect EVT read). Everything executed under the fence
     * touches only core-local state and this core's private process
     * memory, so fenced runs on different cores commute — the batch
     * engine may run them in any order without changing a byte.
     *
     * @return true when the core parked at a memsys-touching
     * instruction with cycle() < horizon (the caller must fall back
     * to interleaved stepping for the rest of the window); false when
     * the core reached the horizon or stopped being runnable.
     */
    bool runFenced(uint64_t horizon);

    /** Superblock dispatch stats (never exported; see above). */
    const SuperblockStats &superblockStats() const { return sbStats_; }

    /** Current program counter (PC-sampling interface). */
    isa::CodeAddr pc() const { return pc_; }

    /** Register read (tests). */
    uint64_t reg(uint32_t r) const { return regs_[r]; }

    const HpmCounters &hpm() const { return hpm_; }

    /** Nap intensity in [0, 1]: fraction of each period slept. */
    void setNapIntensity(double f);
    double napIntensity() const { return napIntensity_; }

    /** Charge runtime work to this core. */
    void stealCycles(uint64_t cycles);

    /** Enable/disable the binary-translation execution mode. */
    void setBtConfig(const BtConfig &bt);

    /** Call-stack depth (tests). */
    size_t stackDepth() const { return stack_.size(); }

    /** Install the flip-watch fire callback (the protean runtime). */
    void setFlipHook(FlipHook hook) { flipHook_ = std::move(hook); }

    /** Arm a flip-effect watch; fires (and is removed) at the first
     *  control transfer into [lo, hi). */
    void armFlipWatch(const FlipWatch &w) { flipWatches_.push_back(w); }

    /**
     * Supersede every pending watch for `func` with a newer dispatch:
     * each keeps its identity (and the runtime its request cycle) but
     * now fires when execution first reaches code at least as new as
     * the latest variant — the flip it was waiting for is subsumed.
     */
    void retargetFlipWatches(uint32_t func, isa::CodeAddr lo,
                             isa::CodeAddr hi, isa::CodeAddr entry);

    /** Pending (unfired) flip watches on this core. */
    size_t flipWatchCount() const { return flipWatches_.size(); }

  private:
    static constexpr uint32_t kSavedRegs =
        isa::kNumMachineRegs - isa::kFirstGeneralReg;

    struct Frame
    {
        isa::CodeAddr ret;
        std::array<uint64_t, kSavedRegs> saved;
    };

    uint32_t id_;
    const MachineConfig &cfg_;
    MemorySystem &memsys_;

    Process *proc_ = nullptr;
    isa::CodeAddr pc_ = 0;
    std::array<uint64_t, isa::kNumMachineRegs> regs_{};
    std::vector<Frame> stack_;

    uint64_t cycle_ = 0;
    HpmCounters hpm_;

    double napIntensity_ = 0.0;
    uint64_t stolenBacklog_ = 0;
    /** True iff stolenBacklog_ > 0 || napIntensity_ > 0. Maintained
     *  by the throttle producers so the batched hot loop pays one
     *  predictable branch instead of re-deriving the disjunction per
     *  instruction. While set, run() stays on the per-instruction
     *  path: nap windows must be re-checked before every step. */
    bool throttleActive_ = false;

    BtConfig bt_;
    std::unordered_set<isa::CodeAddr> btBlocks_;

    /** A straight-line run of pre-resolved instructions starting at
     *  some code address: extends up to and including the first
     *  control-flow instruction (or the decode cap). */
    struct Superblock
    {
        std::vector<isa::MInst> insts;
        /** Index of the first memsys-touching instruction (Load,
         *  Store, CallIndirect); insts.size() when none. Fenced runs
         *  stop here without executing it. */
        uint32_t memFence = 0;
    };

    /** Bounds decode work and cache growth per dispatch miss. */
    static constexpr size_t kMaxSuperblockLen = 128;

    /** Decoded blocks by start address. unordered_map nodes are
     *  stable, so references survive later insertions. */
    std::unordered_map<isa::CodeAddr, Superblock> sbCache_;
    /** Process codeVersion() the cache was decoded against. */
    uint64_t sbVersion_ = 0;
    SuperblockStats sbStats_;

    /** Armed flip-effect watches (usually none — one emptiness test
     *  per control transfer is the entire off-path cost). */
    std::vector<FlipWatch> flipWatches_;
    FlipHook flipHook_;

    /** Returns true if the core consumed a nap/stolen interval. */
    bool consumeThrottles();

    /** Recompute throttleActive_ after a producer-side change. */
    void refreshThrottleFlag()
    {
        throttleActive_ = stolenBacklog_ > 0 || napIntensity_ > 0.0;
    }

    /** Find-or-decode the superblock starting at pc_, retiring the
     *  whole cache first when the process's code version moved. */
    const Superblock &fetchSuperblock();

    static bool touchesMemsys(isa::MOp op)
    {
        return op == isa::MOp::Load || op == isa::MOp::Store ||
            op == isa::MOp::CallIndirect;
    }

    void execute(const isa::MInst &inst);
    uint64_t memAccess(uint64_t vaddr, bool nonTemporal);
    void doCall(isa::CodeAddr target);
    void doRet();
    void transferTo(isa::CodeAddr target, bool indirect);
    /** Fire-and-remove every watch covering `target` (cold path). */
    void fireFlipWatches(isa::CodeAddr target);
    void halt();
};

} // namespace sim
} // namespace protean

#endif // PROTEAN_SIM_CORE_H
