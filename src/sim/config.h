/**
 * @file
 * Machine configuration.
 *
 * Defaults approximate the paper's evaluation platform, a quad-core
 * AMD Phenom II X4: per-core L1D and L2, one shared L3 (6 MiB), with
 * a single DRAM channel behind the L3. Sizes are scaled down by a
 * constant factor together with workload working sets so simulated
 * runs finish quickly while preserving the capacity relationships
 * (working sets span "fits in L2" to "several times the LLC").
 *
 * Simulated wall-clock time is defined by cyclesPerMs. All protean
 * runtime intervals (flux probes, compile costs, evaluation windows)
 * are specified in simulated milliseconds and converted through it.
 */

#ifndef PROTEAN_SIM_CONFIG_H
#define PROTEAN_SIM_CONFIG_H

#include <cstdint>

namespace protean {
namespace sim {

/** Non-temporal fill handling in the L2/LLC (DESIGN.md ablation). */
enum class NtPolicy : uint8_t {
    /** Insert at LRU position: evicted first unless re-referenced. */
    LruInsert,
    /** Do not allocate in L2/L3 at all. */
    Bypass,
};

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    uint32_t sizeBytes = 0;
    uint32_t ways = 8;
    uint32_t lineBytes = 64;
    /** Added lookup latency when the access reaches this level. */
    uint32_t latency = 2;
};

/** Whole-machine configuration. */
struct MachineConfig
{
    uint32_t numCores = 4;

    /** Scaled-down Phenom-II-like hierarchy: capacities shrink with
     *  the simulated timescale so working sets spanning "fits in L2"
     *  through "several times the LLC" stay cheap to simulate. */
    CacheConfig l1 = {4 * 1024, 4, 64, 2};
    CacheConfig l2 = {16 * 1024, 8, 64, 6};
    CacheConfig l3 = {128 * 1024, 16, 64, 18};

    /** DRAM access latency after an L3 miss. */
    uint32_t dramLatency = 60;
    /** DRAM channel occupancy per access (bandwidth model). Two
     *  full-rate streamers oversubscribe the channel, so bandwidth
     *  contention is a real effect alongside LLC capacity. */
    uint32_t dramOccupancy = 6;

    /**
     * Stride prefetcher: when a core's recent accesses form a
     * sequential line run of at least prefetchMinRun, a demand miss
     * to DRAM also fills the next prefetchDegree lines into L2/L3 in
     * the background (no core stall). This restores the memory-level
     * parallelism a blocking in-order core lacks, so streaming
     * workloads run — and pollute the shared LLC — at realistic
     * rates, while irregular (strided/pointer-chasing) patterns see
     * full memory latency. Prefetch fills inherit the triggering
     * access's non-temporal flag, as prefetchnta streams do.
     */
    uint32_t prefetchDegree = 7;
    uint32_t prefetchMinRun = 4;

    NtPolicy ntPolicy = NtPolicy::LruInsert;

    /** Simulated cycles per simulated millisecond. */
    uint64_t cyclesPerMs = 5000;

    /** Duty-cycle period for the nap mechanism, in cycles. */
    uint64_t napPeriodCycles = 2000;

    uint64_t msToCycles(double ms) const
    {
        return static_cast<uint64_t>(ms * static_cast<double>(cyclesPerMs));
    }

    double cyclesToMs(uint64_t cycles) const
    {
        return static_cast<double>(cycles) /
            static_cast<double>(cyclesPerMs);
    }
};

/** Per-transfer costs of the binary-translation execution mode.
 *  Calibrated so the SPEC-wide mean overhead lands near the ~18%
 *  the paper measures for DynamoRIO: the per-transfer costs fold in
 *  trace exits, link stubs and the code cache's instruction-fetch
 *  footprint, which this simulator does not model directly. */
struct BtConfig
{
    bool enabled = false;
    /** One-time translation cost per basic-block head. */
    uint32_t translateCycles = 600;
    /** Hash-lookup cost per indirect transfer (ret, calli). */
    uint32_t indirectCycles = 200;
    /** Residual cost per taken direct transfer (linked blocks). */
    uint32_t takenExtraCycles = 35;
};

} // namespace sim
} // namespace protean

#endif // PROTEAN_SIM_CONFIG_H
