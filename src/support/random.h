/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic choice in the library flows through Rng so that
 * experiments are reproducible bit-for-bit from a seed. The generator
 * is SplitMix64-seeded xoshiro256**, which is fast and has no
 * dependence on platform RNG state.
 */

#ifndef PROTEAN_SUPPORT_RANDOM_H
#define PROTEAN_SUPPORT_RANDOM_H

#include <cstdint>

namespace protean {

/**
 * Stateless SplitMix64 finalizer: a high-quality 64-bit mixing
 * function. Used wherever a *pure* hash of an identity must drive a
 * deterministic decision with no stream state (fault-injection
 * per-request coin flips, shard routing) — unlike Rng, two callers
 * can never perturb each other's values.
 */
uint64_t mix64(uint64_t x);

/** Deterministic, seedable random number generator. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (any value, including 0). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound); bound must be > 0. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform unsigned integer in [lo, hi] inclusive; lo <= hi.
     *  Unlike nextRange, covers the full uint64_t domain. */
    uint64_t nextBounded(uint64_t lo, uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability p of returning true. */
    bool nextBool(double p = 0.5);

    /**
     * Gaussian sample via Box-Muller.
     * @param mean Distribution mean.
     * @param stddev Distribution standard deviation.
     */
    double nextGaussian(double mean = 0.0, double stddev = 1.0);

    /**
     * Exponential sample (Poisson-process interarrival time).
     * @param mean Distribution mean (= 1/rate); must be > 0.
     */
    double nextExponential(double mean);

    /** Fork an independent stream (stable given call order). */
    Rng fork();

  private:
    uint64_t s_[4];
    bool haveGauss_ = false;
    double gauss_ = 0.0;
};

} // namespace protean

#endif // PROTEAN_SUPPORT_RANDOM_H
