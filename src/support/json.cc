#include "support/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "support/logging.h"

namespace protean {

/** Recursive-descent parser over a borrowed text buffer. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *err)
        : text_(text), err_(err)
    {
    }

    JsonValue run()
    {
        JsonValue v = parseValue();
        if (failed_)
            return JsonValue();
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing content after document");
            return JsonValue();
        }
        return v;
    }

  private:
    const std::string &text_;
    std::string *err_;
    size_t pos_ = 0;
    bool failed_ = false;

    void fail(const std::string &what)
    {
        if (!failed_ && err_)
            *err_ = what + " at byte " + std::to_string(pos_);
        failed_ = true;
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool literal(const char *word)
    {
        size_t n = 0;
        while (word[n] != '\0')
            ++n;
        if (text_.compare(pos_, n, word) != 0) {
            fail(std::string("expected '") + word + "'");
            return false;
        }
        pos_ += n;
        return true;
    }

    JsonValue parseValue()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return JsonValue();
        }
        char c = text_[pos_];
        switch (c) {
        case '{':
            return parseObject();
        case '[':
            return parseArray();
        case '"':
            return parseString();
        case 't': {
            JsonValue v;
            if (literal("true")) {
                v.type_ = JsonValue::Type::Bool;
                v.bool_ = true;
            }
            return v;
        }
        case 'f': {
            JsonValue v;
            if (literal("false")) {
                v.type_ = JsonValue::Type::Bool;
                v.bool_ = false;
            }
            return v;
        }
        case 'n': {
            JsonValue v;
            literal("null");
            return v;
        }
        default:
            return parseNumber();
        }
    }

    JsonValue parseObject()
    {
        JsonValue v;
        v.type_ = JsonValue::Type::Object;
        ++pos_; // '{'
        skipWs();
        if (consume('}'))
            return v;
        while (!failed_) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key string");
                return v;
            }
            JsonValue key = parseString();
            if (failed_)
                return v;
            skipWs();
            if (!consume(':')) {
                fail("expected ':' after object key");
                return v;
            }
            JsonValue val = parseValue();
            if (failed_)
                return v;
            v.obj_.emplace_back(key.str_, std::move(val));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return v;
            fail("expected ',' or '}' in object");
        }
        return v;
    }

    JsonValue parseArray()
    {
        JsonValue v;
        v.type_ = JsonValue::Type::Array;
        ++pos_; // '['
        skipWs();
        if (consume(']'))
            return v;
        while (!failed_) {
            JsonValue item = parseValue();
            if (failed_)
                return v;
            v.arr_.push_back(std::move(item));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return v;
            fail("expected ',' or ']' in array");
        }
        return v;
    }

    JsonValue parseString()
    {
        JsonValue v;
        v.type_ = JsonValue::Type::String;
        ++pos_; // opening quote
        std::string out;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                v.str_ = std::move(out);
                return v;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    break;
                char e = text_[pos_++];
                switch (e) {
                case '"':
                    out += '"';
                    break;
                case '\\':
                    out += '\\';
                    break;
                case '/':
                    out += '/';
                    break;
                case 'b':
                    out += '\b';
                    break;
                case 'f':
                    out += '\f';
                    break;
                case 'n':
                    out += '\n';
                    break;
                case 'r':
                    out += '\r';
                    break;
                case 't':
                    out += '\t';
                    break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail("truncated \\u escape");
                        return v;
                    }
                    uint32_t cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text_[pos_++];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= static_cast<uint32_t>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= static_cast<uint32_t>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= static_cast<uint32_t>(h - 'A' + 10);
                        else {
                            fail("bad hex digit in \\u escape");
                            return v;
                        }
                    }
                    // UTF-8 encode the BMP code point (surrogate
                    // pairs are passed through as two 3-byte
                    // sequences; the repo's own exports are ASCII).
                    if (cp < 0x80) {
                        out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        out += static_cast<char>(0xC0 | (cp >> 6));
                        out +=
                            static_cast<char>(0x80 | (cp & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (cp >> 12));
                        out += static_cast<char>(
                            0x80 | ((cp >> 6) & 0x3F));
                        out +=
                            static_cast<char>(0x80 | (cp & 0x3F));
                    }
                    break;
                }
                default:
                    fail("unknown escape character");
                    return v;
                }
                continue;
            }
            out += c;
            ++pos_;
        }
        fail("unterminated string");
        return v;
    }

    JsonValue parseNumber()
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(
                    text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        JsonValue v;
        if (pos_ == start) {
            fail("expected a value");
            return v;
        }
        std::string tok = text_.substr(start, pos_ - start);
        char *end = nullptr;
        double d = std::strtod(tok.c_str(), &end);
        if (end == tok.c_str() || *end != '\0' || !std::isfinite(d)) {
            pos_ = start;
            fail("malformed number");
            return v;
        }
        v.type_ = JsonValue::Type::Number;
        v.num_ = d;
        return v;
    }
};

JsonValue
JsonValue::parse(const std::string &text, std::string *err)
{
    if (err)
        err->clear();
    return JsonParser(text, err).run();
}

bool
JsonValue::asBool() const
{
    if (type_ != Type::Bool)
        fatal("JsonValue: asBool() on non-bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (type_ != Type::Number)
        fatal("JsonValue: asNumber() on non-number");
    return num_;
}

int64_t
JsonValue::asInt() const
{
    return static_cast<int64_t>(asNumber());
}

const std::string &
JsonValue::asString() const
{
    if (type_ != Type::String)
        fatal("JsonValue: asString() on non-string");
    return str_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (type_ != Type::Array)
        fatal("JsonValue: items() on non-array");
    return arr_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (type_ != Type::Object)
        fatal("JsonValue: members() on non-object");
    return obj_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &[k, v] : obj_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isNumber() ? v->num_ : fallback;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->str_ : fallback;
}

} // namespace protean
