#include "support/table.h"

#include <algorithm>
#include <cstdio>

#include "support/logging.h"

namespace protean {

TextTable::TextTable(std::string title)
    : title_(std::move(title))
{
}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
TextTable::fmt(double v, int precision)
{
    return strformat("%.*f", precision, v);
}

std::string
TextTable::toText() const
{
    size_t ncols = header_.size();
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.size());

    std::vector<size_t> widths(ncols, 0);
    auto measure = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    measure(header_);
    for (const auto &r : rows_)
        measure(r);

    auto render = [&](const std::vector<std::string> &row) {
        std::string line;
        for (size_t i = 0; i < ncols; ++i) {
            std::string cell = i < row.size() ? row[i] : "";
            line += cell;
            if (i + 1 < ncols)
                line += std::string(widths[i] - cell.size() + 2, ' ');
        }
        // Trim trailing spaces.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out;
    if (!title_.empty())
        out += "== " + title_ + " ==\n";
    if (!header_.empty()) {
        out += render(header_);
        size_t total = 0;
        for (size_t i = 0; i < ncols; ++i)
            total += widths[i] + (i + 1 < ncols ? 2 : 0);
        out += std::string(total, '-') + "\n";
    }
    for (const auto &r : rows_)
        out += render(r);
    return out;
}

std::string
TextTable::toCsv() const
{
    auto escape = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char c : s) {
            if (c == '"')
                out += "\"\"";
            else
                out.push_back(c);
        }
        out += "\"";
        return out;
    };
    std::string out;
    auto render = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            out += escape(row[i]);
            if (i + 1 < row.size())
                out += ",";
        }
        out += "\n";
    };
    if (!header_.empty())
        render(header_);
    for (const auto &r : rows_)
        render(r);
    return out;
}

void
TextTable::print() const
{
    std::fputs(toText().c_str(), stdout);
}

} // namespace protean
