#include "support/random.h"

#include <cmath>

#include "support/logging.h"

namespace protean {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

uint64_t
mix64(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBelow called with bound == 0");
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    if (lo > hi)
        panic("Rng::nextRange called with lo > hi");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next());
    return lo + static_cast<int64_t>(nextBelow(span));
}

uint64_t
Rng::nextBounded(uint64_t lo, uint64_t hi)
{
    if (lo > hi)
        panic("Rng::nextBounded called with lo > hi");
    uint64_t span = hi - lo + 1;
    if (span == 0) // full 64-bit range
        return next();
    return lo + nextBelow(span);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

double
Rng::nextGaussian(double mean, double stddev)
{
    if (haveGauss_) {
        haveGauss_ = false;
        return mean + stddev * gauss_;
    }
    double u1 = 0.0;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    double u2 = nextDouble();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    gauss_ = r * std::sin(theta);
    haveGauss_ = true;
    return mean + stddev * (r * std::cos(theta));
}

double
Rng::nextExponential(double mean)
{
    if (mean <= 0.0)
        panic("Rng::nextExponential requires mean > 0");
    // Inverse transform; 1 - u avoids log(0) since u is in [0, 1).
    return -mean * std::log(1.0 - nextDouble());
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace protean
