#include "support/threadpool.h"

#include <algorithm>

namespace protean {

namespace {

/** Polite busy-wait hint. */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::this_thread::yield();
#endif
}

/** Pause iterations before a waiter starts yielding its timeslice.
 *  Long enough to bridge the serial gap between cluster quanta
 *  (sub-microsecond), short enough that an oversubscribed host (more
 *  lanes than cores) hands the CPU to whoever holds the work instead
 *  of spinning out a full scheduling quantum. */
constexpr int kSpinIters = 1024;

/** Yield iterations before a worker falls back to the condvar. */
constexpr int kYieldIters = 64;

} // namespace

uint32_t
WorkerPool::recommendedLanes()
{
    return std::max<uint32_t>(std::thread::hardware_concurrency(), 1);
}

WorkerPool::WorkerPool(uint32_t threads)
{
    count_ = std::max<uint32_t>(threads, 1);
    lanes_ = std::make_unique<Lane[]>(count_);
    threads_.reserve(count_ - 1);
    for (uint32_t lane = 1; lane < count_; ++lane)
        threads_.emplace_back([this, lane] { workerMain(lane); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_.store(true, std::memory_order_release);
    }
    wake_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
WorkerPool::parallelFor(size_t n,
                        const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (n == 1 || count_ == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    // Carve [0, n) into one contiguous chunk per lane (the first
    // n % count_ lanes take the extra item). Chunks and the job slot
    // are published by the gen_ release bump below.
    fn_ = &fn;
    size_t base = n / count_;
    size_t rem = n % count_;
    size_t lo = 0;
    for (uint32_t w = 0; w < count_; ++w) {
        size_t len = base + (w < rem ? 1 : 0);
        lanes_[w].next.store(lo, std::memory_order_relaxed);
        lanes_[w].end = lo + len;
        lo += len;
    }
    pending_.store(count_ - 1, std::memory_order_relaxed);
    gen_.fetch_add(1, std::memory_order_release);
    // Pair with a sleeping worker's predicate check under the lock;
    // spinning workers see the gen_ bump directly.
    {
        std::lock_guard<std::mutex> lock(mu_);
    }
    wake_.notify_all();
    runLanes(0, fn);
    // Workers finish within microseconds of the caller's own lane —
    // stealing shrinks that tail further; spin-then-yield here is
    // cheaper than a done-condvar round trip, and the yield keeps
    // one-core hosts from livelocking the very thread being waited
    // on.
    int spins = 0;
    while (pending_.load(std::memory_order_acquire) != 0) {
        if (++spins < kSpinIters)
            cpuRelax();
        else
            std::this_thread::yield();
    }
    fn_ = nullptr;
}

void
WorkerPool::runLanes(uint32_t home,
                     const std::function<void(size_t)> &fn)
{
    // Drain the home chunk first (cursor stays core-local while no
    // thief arrives), then sweep the other lanes in circular order
    // and steal whatever their owners have not claimed yet. Every
    // item is claimed by exactly one fetch_add winner.
    for (uint32_t k = 0; k < count_; ++k) {
        Lane &lane = lanes_[(home + k) % count_];
        const size_t end = lane.end;
        for (;;) {
            size_t i = lane.next.fetch_add(1, std::memory_order_relaxed);
            if (i >= end)
                break;
            fn(i);
        }
    }
}

void
WorkerPool::workerMain(uint32_t lane)
{
    uint64_t seen = 0;
    for (;;) {
        int spins = 0;
        while (gen_.load(std::memory_order_acquire) == seen &&
               !stop_.load(std::memory_order_acquire)) {
            ++spins;
            if (spins < kSpinIters) {
                cpuRelax();
                continue;
            }
            if (spins < kSpinIters + kYieldIters) {
                std::this_thread::yield();
                continue;
            }
            std::unique_lock<std::mutex> lock(mu_);
            wake_.wait(lock, [this, seen] {
                return stop_.load(std::memory_order_acquire) ||
                    gen_.load(std::memory_order_acquire) != seen;
            });
            break;
        }
        if (stop_.load(std::memory_order_acquire))
            return;
        seen = gen_.load(std::memory_order_acquire);
        runLanes(lane, *fn_);
        pending_.fetch_sub(1, std::memory_order_acq_rel);
    }
}

} // namespace protean
