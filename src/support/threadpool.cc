#include "support/threadpool.h"

#include <algorithm>

namespace protean {

namespace {

/** Polite busy-wait hint. */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::this_thread::yield();
#endif
}

/** Pause iterations before a waiter starts yielding its timeslice.
 *  Long enough to bridge the serial gap between cluster quanta
 *  (sub-microsecond), short enough that an oversubscribed host (more
 *  lanes than cores) hands the CPU to whoever holds the work instead
 *  of spinning out a full scheduling quantum. */
constexpr int kSpinIters = 1024;

/** Yield iterations before a worker falls back to the condvar. */
constexpr int kYieldIters = 64;

} // namespace

WorkerPool::WorkerPool(uint32_t threads)
{
    count_ = std::max<uint32_t>(threads, 1);
    threads_.reserve(count_ - 1);
    for (uint32_t lane = 1; lane < count_; ++lane)
        threads_.emplace_back([this, lane] { workerMain(lane); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_.store(true, std::memory_order_release);
    }
    wake_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
WorkerPool::parallelFor(size_t n,
                        const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (n == 1 || count_ == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    fn_ = &fn;
    n_ = n;
    pending_.store(count_ - 1, std::memory_order_relaxed);
    gen_.fetch_add(1, std::memory_order_release);
    // Pair with a sleeping worker's predicate check under the lock;
    // spinning workers see the gen_ bump directly.
    {
        std::lock_guard<std::mutex> lock(mu_);
    }
    wake_.notify_all();
    for (size_t i = 0; i < n; i += count_)
        fn(i);
    // Workers finish within microseconds of the caller's own lane;
    // spin-then-yield here is cheaper than a done-condvar round
    // trip, and the yield keeps one-core hosts from livelocking the
    // very thread being waited on.
    int spins = 0;
    while (pending_.load(std::memory_order_acquire) != 0) {
        if (++spins < kSpinIters)
            cpuRelax();
        else
            std::this_thread::yield();
    }
    fn_ = nullptr;
}

void
WorkerPool::workerMain(uint32_t lane)
{
    uint64_t seen = 0;
    for (;;) {
        int spins = 0;
        while (gen_.load(std::memory_order_acquire) == seen &&
               !stop_.load(std::memory_order_acquire)) {
            ++spins;
            if (spins < kSpinIters) {
                cpuRelax();
                continue;
            }
            if (spins < kSpinIters + kYieldIters) {
                std::this_thread::yield();
                continue;
            }
            std::unique_lock<std::mutex> lock(mu_);
            wake_.wait(lock, [this, seen] {
                return stop_.load(std::memory_order_acquire) ||
                    gen_.load(std::memory_order_acquire) != seen;
            });
            break;
        }
        if (stop_.load(std::memory_order_acquire))
            return;
        seen = gen_.load(std::memory_order_acquire);
        const std::function<void(size_t)> *fn = fn_;
        size_t n = n_;
        for (size_t i = lane; i < n; i += count_)
            (*fn)(i);
        pending_.fetch_sub(1, std::memory_order_acq_rel);
    }
}

} // namespace protean
