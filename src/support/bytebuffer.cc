#include "support/bytebuffer.h"

#include <cstring>

#include "support/logging.h"

namespace protean {

void
ByteWriter::writeVarUint(uint64_t v)
{
    while (v >= 0x80) {
        bytes_.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    bytes_.push_back(static_cast<uint8_t>(v));
}

void
ByteWriter::writeVarInt(int64_t v)
{
    // Zig-zag encoding maps small negative values to small varints.
    uint64_t zz = (static_cast<uint64_t>(v) << 1) ^
        static_cast<uint64_t>(v >> 63);
    writeVarUint(zz);
}

void
ByteWriter::writeFixed64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
ByteWriter::writeDouble(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    writeFixed64(bits);
}

void
ByteWriter::writeString(const std::string &s)
{
    writeVarUint(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void
ByteWriter::writeBytes(const uint8_t *data, size_t len)
{
    bytes_.insert(bytes_.end(), data, data + len);
}

uint8_t
ByteReader::readByte()
{
    if (pos_ >= len_)
        panic("ByteReader: read past end (pos %zu, len %zu)", pos_, len_);
    return data_[pos_++];
}

uint64_t
ByteReader::readVarUint()
{
    uint64_t v = 0;
    int shift = 0;
    for (;;) {
        uint8_t b = readByte();
        v |= static_cast<uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            break;
        shift += 7;
        if (shift >= 64)
            panic("ByteReader: varint overflow");
    }
    return v;
}

int64_t
ByteReader::readVarInt()
{
    uint64_t zz = readVarUint();
    return static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
}

uint64_t
ByteReader::readFixed64()
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(readByte()) << (8 * i);
    return v;
}

double
ByteReader::readDouble()
{
    uint64_t bits = readFixed64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
ByteReader::readString()
{
    uint64_t n = readVarUint();
    if (n > remaining())
        panic("ByteReader: string length %llu exceeds remaining %zu",
              static_cast<unsigned long long>(n), remaining());
    std::string s(reinterpret_cast<const char *>(data_ + pos_),
                  static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return s;
}

void
ByteReader::readBytes(uint8_t *out, size_t len)
{
    if (len > remaining())
        panic("ByteReader: read of %zu bytes exceeds remaining %zu",
              len, remaining());
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
}

} // namespace protean
