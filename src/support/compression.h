/**
 * @file
 * LZ-style byte compression.
 *
 * The protean code compiler compresses the serialized IR before
 * embedding it in the binary's data region (Section III-A2 of the
 * paper: "pcc serializes, compresses and places the intermediate
 * representation of the program into its data region"). This is a
 * self-contained LZ77-family codec: greedy hash-chain matching with
 * a 64 KiB window, emitting (literal-run, match) token pairs.
 */

#ifndef PROTEAN_SUPPORT_COMPRESSION_H
#define PROTEAN_SUPPORT_COMPRESSION_H

#include <cstdint>
#include <vector>

namespace protean {

/**
 * Compress a byte buffer.
 * The output embeds the uncompressed size so decompress() can
 * pre-allocate; an empty input yields a small valid header.
 */
std::vector<uint8_t> compress(const std::vector<uint8_t> &input);

/**
 * Decompress a buffer produced by compress().
 * Panics on a corrupt stream (embedded payloads are produced by this
 * library, so corruption indicates an internal error).
 */
std::vector<uint8_t> decompress(const std::vector<uint8_t> &input);

} // namespace protean

#endif // PROTEAN_SUPPORT_COMPRESSION_H
