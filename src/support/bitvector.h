/**
 * @file
 * Dynamic bit vector.
 *
 * PC3D represents a program variant as a bit vector over the static
 * loads of the program (1 = the load carries a non-temporal hint).
 * BitVector is the canonical representation for those variant masks
 * and for coverage sets in the search heuristics.
 */

#ifndef PROTEAN_SUPPORT_BITVECTOR_H
#define PROTEAN_SUPPORT_BITVECTOR_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace protean {

/** A fixed-size vector of bits with set-algebra helpers. */
class BitVector
{
  public:
    /** Construct with all bits clear. */
    explicit BitVector(size_t size = 0, bool initial = false);

    /** Number of bits. */
    size_t size() const { return size_; }

    /** Read bit i (bounds-checked). */
    bool test(size_t i) const;

    /** Set bit i to value (bounds-checked). */
    void set(size_t i, bool value = true);

    /** Flip bit i, returning the new value. */
    bool flip(size_t i);

    /** Set all bits. */
    void setAll();

    /** Clear all bits. */
    void clearAll();

    /** Number of set bits. */
    size_t count() const;

    /** True if no bit is set. */
    bool none() const { return count() == 0; }

    /** True if every bit is set. */
    bool all() const { return count() == size_; }

    /** Bitwise OR with another vector of the same size. */
    BitVector &operator|=(const BitVector &other);

    /** Bitwise AND with another vector of the same size. */
    BitVector &operator&=(const BitVector &other);

    bool operator==(const BitVector &other) const;

    /** Render as a string of '0'/'1', index 0 first. */
    std::string toString() const;

    /** Indices of set bits, ascending. */
    std::vector<size_t> setBits() const;

  private:
    size_t size_;
    std::vector<uint64_t> words_;

    void checkIndex(size_t i) const;
    void maskTail();
};

} // namespace protean

#endif // PROTEAN_SUPPORT_BITVECTOR_H
