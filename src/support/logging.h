/**
 * @file
 * Logging and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for unrecoverable
 * user errors (bad configuration, invalid arguments), warn() and
 * inform() are non-fatal status channels.
 */

#ifndef PROTEAN_SUPPORT_LOGGING_H
#define PROTEAN_SUPPORT_LOGGING_H

#include <cstdarg>
#include <string>

namespace protean {

/** Verbosity levels for the status channels. */
enum class LogLevel { Silent, Warn, Inform, Debug };

/** Set the global verbosity; defaults to Warn. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Report an internal invariant violation and abort.
 * Use for conditions that indicate a bug in the library itself.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error and exit(1).
 * Use for bad configuration or invalid arguments.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious but survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operational status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report developer-facing diagnostics (LogLevel::Debug only). */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Format a string printf-style. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

namespace detail {
std::string vformat(const char *fmt, va_list args);
} // namespace detail

} // namespace protean

#endif // PROTEAN_SUPPORT_LOGGING_H
