/**
 * @file
 * Summary-statistics helpers used by benches and the runtime.
 */

#ifndef PROTEAN_SUPPORT_STATS_H
#define PROTEAN_SUPPORT_STATS_H

#include <cstddef>
#include <vector>

namespace protean {

/** Streaming accumulator for min/max/mean/variance. */
class RunningStat
{
  public:
    /** Add one observation. */
    void add(double x);

    size_t count() const { return n_; }
    double mean() const;
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return sum_; }

  private:
    size_t n_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Arithmetic mean of a sample; 0 for an empty sample. */
double mean(const std::vector<double> &xs);

/** Geometric mean; all inputs must be positive. */
double geomean(const std::vector<double> &xs);

/** Sample percentile (nearest-rank); p in [0, 100]. */
double percentile(std::vector<double> xs, double p);

/**
 * Exponentially-weighted moving average.
 * Used by monitoring code to smooth per-interval HPM readings.
 */
class Ewma
{
  public:
    /** @param alpha Weight of the newest observation, in (0, 1]. */
    explicit Ewma(double alpha = 0.25);

    /** Fold in one observation and return the new average. */
    double add(double x);

    /** Current value (0 before any observation). */
    double value() const { return value_; }

    /** True once at least one observation has arrived. */
    bool primed() const { return primed_; }

    void reset();

  private:
    double alpha_;
    double value_ = 0.0;
    bool primed_ = false;
};

} // namespace protean

#endif // PROTEAN_SUPPORT_STATS_H
