/**
 * @file
 * Plain-text table emitter.
 *
 * Every bench binary regenerates a paper table or figure as rows of
 * text; TextTable renders aligned columns to stdout and optionally a
 * CSV twin so results can be re-plotted.
 */

#ifndef PROTEAN_SUPPORT_TABLE_H
#define PROTEAN_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace protean {

/** Column-aligned text table with an optional title and CSV output. */
class TextTable
{
  public:
    explicit TextTable(std::string title = "");

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; ragged rows are padded when rendering. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with the given precision. */
    static std::string fmt(double v, int precision = 3);

    /** Render aligned text. */
    std::string toText() const;

    /** Render as CSV (no alignment padding). */
    std::string toCsv() const;

    /** Print toText() to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace protean

#endif // PROTEAN_SUPPORT_TABLE_H
