#include "support/compression.h"

#include <cstring>

#include "support/bytebuffer.h"
#include "support/logging.h"

namespace protean {

namespace {

constexpr size_t kWindow = 64 * 1024;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 1024;
constexpr uint32_t kHashSize = 1 << 15;

uint32_t
hash4(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, 4);
    return (v * 2654435761u) >> 17;
}

} // namespace

std::vector<uint8_t>
compress(const std::vector<uint8_t> &input)
{
    ByteWriter out;
    out.writeVarUint(input.size());

    const uint8_t *data = input.data();
    size_t n = input.size();

    // head[h] = most recent position with hash h; prev[] forms chains.
    std::vector<int64_t> head(kHashSize, -1);
    std::vector<int64_t> prev(n, -1);

    size_t pos = 0;
    size_t literal_start = 0;

    auto flush = [&](size_t lit_end, size_t match_len, size_t match_dist) {
        out.writeVarUint(lit_end - literal_start);
        out.writeBytes(data + literal_start, lit_end - literal_start);
        out.writeVarUint(match_len);
        if (match_len > 0)
            out.writeVarUint(match_dist);
    };

    while (pos < n) {
        size_t best_len = 0;
        size_t best_dist = 0;
        if (pos + kMinMatch <= n) {
            uint32_t h = hash4(data + pos);
            int64_t cand = head[h];
            int chain = 32;
            while (cand >= 0 && chain-- > 0 &&
                   pos - static_cast<size_t>(cand) <= kWindow) {
                size_t c = static_cast<size_t>(cand);
                size_t len = 0;
                size_t max = std::min(kMaxMatch, n - pos);
                while (len < max && data[c + len] == data[pos + len])
                    ++len;
                if (len > best_len) {
                    best_len = len;
                    best_dist = pos - c;
                }
                cand = prev[c];
            }
            prev[pos] = head[h];
            head[h] = static_cast<int64_t>(pos);
        }

        if (best_len >= kMinMatch) {
            flush(pos, best_len, best_dist);
            // Insert hash entries for skipped positions so later
            // matches can reference inside this one.
            size_t end = pos + best_len;
            for (size_t p = pos + 1; p + kMinMatch <= n && p < end; ++p) {
                uint32_t h = hash4(data + p);
                prev[p] = head[h];
                head[h] = static_cast<int64_t>(p);
            }
            pos = end;
            literal_start = pos;
        } else {
            ++pos;
        }
    }
    // Trailing literals with a zero-length match terminator.
    flush(n, 0, 0);
    return out.take();
}

std::vector<uint8_t>
decompress(const std::vector<uint8_t> &input)
{
    ByteReader in(input);
    uint64_t size = in.readVarUint();
    std::vector<uint8_t> out;
    out.reserve(static_cast<size_t>(size));

    while (out.size() < size) {
        uint64_t lit = in.readVarUint();
        if (lit > in.remaining())
            panic("decompress: literal run %llu exceeds input",
                  static_cast<unsigned long long>(lit));
        size_t base = out.size();
        out.resize(base + static_cast<size_t>(lit));
        in.readBytes(out.data() + base, static_cast<size_t>(lit));

        uint64_t match_len = in.readVarUint();
        if (match_len > 0) {
            uint64_t dist = in.readVarUint();
            if (dist == 0 || dist > out.size())
                panic("decompress: bad match distance");
            size_t src = out.size() - static_cast<size_t>(dist);
            // Byte-at-a-time: overlapping copies are semantically RLE.
            for (uint64_t i = 0; i < match_len; ++i)
                out.push_back(out[src + static_cast<size_t>(i)]);
        } else if (out.size() < size && in.atEnd()) {
            panic("decompress: truncated stream");
        }
    }
    if (out.size() != size)
        panic("decompress: size mismatch (%zu vs %llu)", out.size(),
              static_cast<unsigned long long>(size));
    return out;
}

} // namespace protean
