#include "support/bitvector.h"

#include <bit>

#include "support/logging.h"

namespace protean {

BitVector::BitVector(size_t size, bool initial)
    : size_(size), words_((size + 63) / 64, initial ? ~0ULL : 0ULL)
{
    maskTail();
}

void
BitVector::checkIndex(size_t i) const
{
    if (i >= size_)
        panic("BitVector index %zu out of range (size %zu)", i, size_);
}

void
BitVector::maskTail()
{
    size_t rem = size_ % 64;
    if (rem != 0 && !words_.empty())
        words_.back() &= (1ULL << rem) - 1;
}

bool
BitVector::test(size_t i) const
{
    checkIndex(i);
    return (words_[i / 64] >> (i % 64)) & 1ULL;
}

void
BitVector::set(size_t i, bool value)
{
    checkIndex(i);
    uint64_t mask = 1ULL << (i % 64);
    if (value)
        words_[i / 64] |= mask;
    else
        words_[i / 64] &= ~mask;
}

bool
BitVector::flip(size_t i)
{
    checkIndex(i);
    words_[i / 64] ^= 1ULL << (i % 64);
    return test(i);
}

void
BitVector::setAll()
{
    for (auto &w : words_)
        w = ~0ULL;
    maskTail();
}

void
BitVector::clearAll()
{
    for (auto &w : words_)
        w = 0ULL;
}

size_t
BitVector::count() const
{
    size_t n = 0;
    for (auto w : words_)
        n += static_cast<size_t>(std::popcount(w));
    return n;
}

BitVector &
BitVector::operator|=(const BitVector &other)
{
    if (other.size_ != size_)
        panic("BitVector size mismatch: %zu vs %zu", size_, other.size_);
    for (size_t i = 0; i < words_.size(); ++i)
        words_[i] |= other.words_[i];
    return *this;
}

BitVector &
BitVector::operator&=(const BitVector &other)
{
    if (other.size_ != size_)
        panic("BitVector size mismatch: %zu vs %zu", size_, other.size_);
    for (size_t i = 0; i < words_.size(); ++i)
        words_[i] &= other.words_[i];
    return *this;
}

bool
BitVector::operator==(const BitVector &other) const
{
    return size_ == other.size_ && words_ == other.words_;
}

std::string
BitVector::toString() const
{
    std::string s;
    s.reserve(size_);
    for (size_t i = 0; i < size_; ++i)
        s.push_back(test(i) ? '1' : '0');
    return s;
}

std::vector<size_t>
BitVector::setBits() const
{
    std::vector<size_t> out;
    for (size_t i = 0; i < size_; ++i) {
        if (test(i))
            out.push_back(i);
    }
    return out;
}

} // namespace protean
