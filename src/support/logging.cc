#include "support/logging.h"

#include <cstdio>
#include <cstdlib>

namespace protean {

namespace {
LogLevel g_level = LogLevel::Warn;
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

namespace detail {

std::string
vformat(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (n < 0)
        return "<format error>";
    std::string out(static_cast<size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

} // namespace detail

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = detail::vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = detail::vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (g_level < LogLevel::Warn)
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = detail::vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::Inform)
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = detail::vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debug(const char *fmt, ...)
{
    if (g_level < LogLevel::Debug)
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = detail::vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

std::string
strformat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = detail::vformat(fmt, args);
    va_end(args);
    return msg;
}

} // namespace protean
