#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"

namespace protean {

void
RunningStat::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::mean() const
{
    return n_ == 0 ? 0.0 : mean_;
}

double
RunningStat::variance() const
{
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::min() const
{
    return n_ == 0 ? 0.0 : min_;
}

double
RunningStat::max() const
{
    return n_ == 0 ? 0.0 : max_;
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            panic("geomean requires positive inputs (got %g)", x);
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(xs.size()));
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    if (p < 0.0 || p > 100.0)
        panic("percentile %g out of [0, 100]", p);
    std::sort(xs.begin(), xs.end());
    size_t rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(xs.size())));
    if (rank == 0)
        rank = 1;
    return xs[rank - 1];
}

Ewma::Ewma(double alpha)
    : alpha_(alpha)
{
    if (alpha <= 0.0 || alpha > 1.0)
        panic("Ewma alpha %g out of (0, 1]", alpha);
}

double
Ewma::add(double x)
{
    if (!primed_) {
        value_ = x;
        primed_ = true;
    } else {
        value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
    return value_;
}

void
Ewma::reset()
{
    value_ = 0.0;
    primed_ = false;
}

} // namespace protean
