/**
 * @file
 * Byte-oriented serialization buffers.
 *
 * ByteWriter/ByteReader are the primitives under the IR serializer:
 * the protean code compiler serializes the program IR with ByteWriter,
 * compresses it and embeds it in the binary's data region; the runtime
 * extracts, decompresses, and re-hydrates it with ByteReader.
 *
 * Integers use LEB128-style variable-length encoding so typical IR
 * payloads stay compact before compression.
 */

#ifndef PROTEAN_SUPPORT_BYTEBUFFER_H
#define PROTEAN_SUPPORT_BYTEBUFFER_H

#include <cstdint>
#include <string>
#include <vector>

namespace protean {

/** Append-only byte sink with varint encoding helpers. */
class ByteWriter
{
  public:
    /** Append a raw byte. */
    void writeByte(uint8_t b) { bytes_.push_back(b); }

    /** Append an unsigned varint (LEB128). */
    void writeVarUint(uint64_t v);

    /** Append a signed varint (zig-zag + LEB128). */
    void writeVarInt(int64_t v);

    /** Append a fixed-width little-endian 64-bit value. */
    void writeFixed64(uint64_t v);

    /** Append an IEEE-754 double as fixed 64 bits. */
    void writeDouble(double v);

    /** Append a length-prefixed string. */
    void writeString(const std::string &s);

    /** Append raw bytes. */
    void writeBytes(const uint8_t *data, size_t len);

    const std::vector<uint8_t> &bytes() const { return bytes_; }
    std::vector<uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<uint8_t> bytes_;
};

/** Sequential reader over a byte span; throws nothing, panics on
 *  malformed input (serialization bugs are internal errors). */
class ByteReader
{
  public:
    ByteReader(const uint8_t *data, size_t len)
        : data_(data), len_(len) {}

    explicit ByteReader(const std::vector<uint8_t> &bytes)
        : data_(bytes.data()), len_(bytes.size()) {}

    uint8_t readByte();
    uint64_t readVarUint();
    int64_t readVarInt();
    uint64_t readFixed64();
    double readDouble();
    std::string readString();
    void readBytes(uint8_t *out, size_t len);

    /** Bytes remaining. */
    size_t remaining() const { return len_ - pos_; }

    /** True when fully consumed. */
    bool atEnd() const { return pos_ == len_; }

  private:
    const uint8_t *data_;
    size_t len_;
    size_t pos_ = 0;
};

} // namespace protean

#endif // PROTEAN_SUPPORT_BYTEBUFFER_H
