/**
 * @file
 * Minimal JSON reader for tooling that consumes the repo's own
 * exports (benchmark trajectories, telemetry snapshots).
 *
 * The repo *writes* JSON by hand everywhere (stable key order,
 * deterministic number formatting); this is the other half — a small
 * recursive-descent parser producing an immutable value tree. It
 * accepts standard JSON (RFC 8259): objects, arrays, strings with
 * escapes, numbers, booleans, null. Object member order is preserved
 * as parsed. Errors are reported with byte offsets, not exceptions,
 * so command-line tools can print a usable message and exit.
 */

#ifndef PROTEAN_SUPPORT_JSON_H
#define PROTEAN_SUPPORT_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace protean {

/** One parsed JSON value (tree node). */
class JsonValue
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    /**
     * Parse a complete JSON document. On failure returns a Null
     * value and, when `err` is non-null, stores a message with the
     * byte offset of the first error. Trailing non-whitespace after
     * the document is an error.
     */
    static JsonValue parse(const std::string &text,
                           std::string *err = nullptr);

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Value accessors; type-checked, fatal on mismatch. */
    bool asBool() const;
    double asNumber() const;
    /** asNumber() truncated toward zero (counters, indices). */
    int64_t asInt() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &items() const;
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** find() chained with a numeric/string default. */
    double numberOr(const std::string &key, double fallback) const;
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::vector<std::pair<std::string, JsonValue>> obj_;

    friend class JsonParser;
};

} // namespace protean

#endif // PROTEAN_SUPPORT_JSON_H
