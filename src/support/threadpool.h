/**
 * @file
 * A small persistent worker pool for deterministic fan-out.
 *
 * parallelFor(n, fn) runs fn(i) for i in [0, n) across the pool and
 * blocks until every call returns. Work is partitioned statically —
 * lane w takes indices w, w+W, w+2W, ... — so the assignment of
 * items to threads is itself reproducible. The pool exists because
 * fleet::Cluster advances machines every quantum: quanta are short
 * (a network round trip, microseconds of host work), so both thread
 * spawning and mutex/condvar wakeups per quantum would cost more
 * than the parallelism saves. Dispatch is therefore a spin-then-
 * sleep generation counter: workers burn a short spin window
 * between back-to-back quanta and only fall back to a condition
 * variable when the pool goes idle. The calling thread executes
 * lane 0 itself, so a pool of W lanes spawns W-1 threads and the
 * caller never pays a wakeup for its own share.
 */

#ifndef PROTEAN_SUPPORT_THREADPOOL_H
#define PROTEAN_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace protean {

/** Fixed-size pool of worker lanes with a fork-join API. */
class WorkerPool
{
  public:
    /** @param threads Lane count (including the caller's lane);
     *  clamped to at least 1. */
    explicit WorkerPool(uint32_t threads);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    uint32_t numThreads() const { return count_; }

    /**
     * Run fn(i) for every i in [0, n), statically partitioned across
     * the pool; returns when all calls have completed. The caller
     * runs lane 0. Not reentrant: fn must not call parallelFor on
     * the same pool, and only one thread may drive the pool.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

  private:
    uint32_t count_ = 0;
    std::vector<std::thread> threads_;
    /** Job slot, published before the gen_ bump (release) and read
     *  by workers after observing it (acquire). */
    const std::function<void(size_t)> *fn_ = nullptr;
    size_t n_ = 0;
    std::atomic<uint64_t> gen_{0};
    std::atomic<uint32_t> pending_{0};
    std::atomic<bool> stop_{false};
    /** Only for the idle-pool deep sleep; never taken per quantum
     *  while work keeps arriving. */
    std::mutex mu_;
    std::condition_variable wake_;

    void workerMain(uint32_t lane);
};

} // namespace protean

#endif // PROTEAN_SUPPORT_THREADPOOL_H
