/**
 * @file
 * A small persistent worker pool for deterministic fan-out.
 *
 * parallelFor(n, fn) runs fn(i) for i in [0, n) across the pool and
 * blocks until every call returns. Work is carved into one contiguous
 * chunk per lane; each lane drains its own chunk through a per-lane
 * atomic cursor and then steals the remainder of other lanes' chunks
 * through the same cursor — lock-free, no per-item allocation. Which
 * thread runs an item is therefore racy, but callers (fleet::Cluster)
 * only hand the pool commutative work: per-machine stepping whose
 * shared side effects are deferred and replayed in machine order at
 * the quantum barrier, so results stay byte-identical to serial runs
 * regardless of the stealing schedule.
 *
 * The pool exists because fleet::Cluster advances machines every
 * quantum: quanta are short (a network round trip, microseconds of
 * host work), so both thread spawning and mutex/condvar wakeups per
 * quantum would cost more than the parallelism saves. Dispatch is
 * therefore a spin-then-sleep generation counter: workers burn a
 * short spin window between back-to-back quanta and only fall back
 * to a condition variable when the pool goes idle. The calling
 * thread executes lane 0 itself, so a pool of W lanes spawns W-1
 * threads and the caller never pays a wakeup for its own share.
 *
 * Lanes beyond the host's hardware threads only spin against each
 * other; recommendedLanes() reports the useful ceiling so callers
 * can clamp (fleet::Cluster::setParallel does).
 */

#ifndef PROTEAN_SUPPORT_THREADPOOL_H
#define PROTEAN_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace protean {

/** Fixed-size pool of work-stealing lanes with a fork-join API. */
class WorkerPool
{
  public:
    /** @param threads Lane count (including the caller's lane);
     *  clamped to at least 1. */
    explicit WorkerPool(uint32_t threads);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    uint32_t numThreads() const { return count_; }

    /** Largest lane count that can make progress in parallel on this
     *  host: hardware_concurrency, or 1 when the host cannot report
     *  it (degrade to serial rather than oversubscribe). */
    static uint32_t recommendedLanes();

    /**
     * Run fn(i) for every i in [0, n), partitioned into contiguous
     * per-lane chunks with work stealing; returns when all calls
     * have completed. The caller runs lane 0. fn must be safe to
     * call from any lane's thread for any index. Not reentrant: fn
     * must not call parallelFor on the same pool, and only one
     * thread may drive the pool.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

  private:
    /** One lane's chunk of the current job: [next, end). Thieves
     *  claim items through the same cursor the owner drains, so a
     *  chunk never runs an item twice. Padded to a cache line to
     *  keep cursor traffic from false-sharing across lanes. */
    struct alignas(64) Lane
    {
        std::atomic<size_t> next{0};
        size_t end = 0;
    };

    uint32_t count_ = 0;
    std::vector<std::thread> threads_;
    std::unique_ptr<Lane[]> lanes_;
    /** Job slot, published before the gen_ bump (release) and read
     *  by workers after observing it (acquire). */
    const std::function<void(size_t)> *fn_ = nullptr;
    std::atomic<uint64_t> gen_{0};
    std::atomic<uint32_t> pending_{0};
    std::atomic<bool> stop_{false};
    /** Only for the idle-pool deep sleep; never taken per quantum
     *  while work keeps arriving. */
    std::mutex mu_;
    std::condition_variable wake_;

    void workerMain(uint32_t lane);

    /** Drain the home lane's chunk, then steal from the others. */
    void runLanes(uint32_t home, const std::function<void(size_t)> &fn);
};

} // namespace protean

#endif // PROTEAN_SUPPORT_THREADPOOL_H
