/**
 * @file
 * Binary-translation baseline (DynamoRIO-style, paper Figure 4).
 *
 * Models the cost structure of a translation-based dynamic compiler
 * executing a program from its code cache while making no code
 * modifications: a one-time translation cost per basic block, a
 * hash-lookup cost on every indirect transfer (returns, indirect
 * calls), and a small residual cost on linked direct transfers.
 * Unlike protean code, all execution flows through the translator,
 * so these costs are paid on the application's critical path — the
 * source of the ~18% average overhead the paper measures.
 */

#ifndef PROTEAN_BASELINES_DYNAMORIO_H
#define PROTEAN_BASELINES_DYNAMORIO_H

#include "sim/machine.h"

namespace protean {
namespace baselines {

/** Default cost parameters for the translation baseline. */
sim::BtConfig defaultBtConfig();

/** Run the process bound to this core under binary translation. */
void enableBinaryTranslation(sim::Machine &machine, uint32_t core,
                             const sim::BtConfig &cfg);

/** Convenience overload with default costs. */
void enableBinaryTranslation(sim::Machine &machine, uint32_t core);

} // namespace baselines
} // namespace protean

#endif // PROTEAN_BASELINES_DYNAMORIO_H
