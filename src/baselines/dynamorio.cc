#include "baselines/dynamorio.h"

namespace protean {
namespace baselines {

sim::BtConfig
defaultBtConfig()
{
    // The calibrated per-transfer costs live with the struct
    // definition (sim/config.h); only arm the mode here.
    sim::BtConfig cfg;
    cfg.enabled = true;
    return cfg;
}

void
enableBinaryTranslation(sim::Machine &machine, uint32_t core,
                        const sim::BtConfig &cfg)
{
    machine.core(core).setBtConfig(cfg);
}

void
enableBinaryTranslation(sim::Machine &machine, uint32_t core)
{
    enableBinaryTranslation(machine, core, defaultBtConfig());
}

} // namespace baselines
} // namespace protean
