#include "validate/validator.h"

#include <algorithm>

#include "support/logging.h"
#include "support/random.h"

namespace protean {
namespace validate {

using isa::MInst;
using isa::MOp;

Mode
parseMode(const std::string &s)
{
    if (s == "off")
        return Mode::Off;
    if (s == "ir")
        return Mode::Ir;
    if (s == "diff")
        return Mode::Diff;
    if (s == "paranoid")
        return Mode::Paranoid;
    fatal("unknown validate mode '%s' (off|ir|diff|paranoid)",
          s.c_str());
}

const char *
modeName(Mode m)
{
    switch (m) {
      case Mode::Off: return "off";
      case Mode::Ir: return "ir";
      case Mode::Diff: return "diff";
      case Mode::Paranoid: return "paranoid";
    }
    return "?";
}

bool
applyMiscompile(std::vector<MInst> &code,
                const faults::MiscompileSpec &spec)
{
    std::vector<size_t> sites;
    switch (spec.kind) {
      case faults::MiscompileKind::DroppedStore:
        for (size_t i = 0; i < code.size(); ++i) {
            if (code[i].op == MOp::Store)
                sites.push_back(i);
        }
        break;
      case faults::MiscompileKind::FlippedNtBit:
        for (size_t i = 0; i < code.size(); ++i) {
            if (code[i].op == MOp::Load)
                sites.push_back(i);
        }
        break;
      case faults::MiscompileKind::SwappedOperand:
        // Only sites where the swap changes meaning: a
        // non-commutative op (or a store's address/value pair)
        // reading two distinct registers.
        for (size_t i = 0; i < code.size(); ++i) {
            const MInst &m = code[i];
            switch (m.op) {
              case MOp::Sub:
              case MOp::Div:
              case MOp::Mod:
              case MOp::Shl:
              case MOp::Shr:
              case MOp::CmpLt:
              case MOp::CmpLe:
              case MOp::Store:
                if (m.rs1 != m.rs2)
                    sites.push_back(i);
                break;
              default:
                break;
            }
        }
        break;
    }
    if (sites.empty())
        return false;
    size_t site = sites[spec.siteSeed % sites.size()];
    switch (spec.kind) {
      case faults::MiscompileKind::DroppedStore:
        code[site] = MInst{}; // defaults to Nop
        break;
      case faults::MiscompileKind::FlippedNtBit:
        code[site].nonTemporal = !code[site].nonTemporal;
        break;
      case faults::MiscompileKind::SwappedOperand:
        std::swap(code[site].rs1, code[site].rs2);
        break;
    }
    return true;
}

Validator::Validator(const ir::Module &module,
                     const isa::Image &image,
                     const codegen::VirtualizationMap &slots,
                     const ValidateConfig &cfg)
    : module_(module), image_(image), slots_(slots), cfg_(cfg)
{
    if (cfg_.diffInputs == 0)
        fatal("Validator: diffInputs must be positive");
}

codegen::LoweredFunction
Validator::lowerVariant(ir::FuncId func, const BitVector &mask) const
{
    // Exactly the runtime compiler's lowering (compiler.cc
    // compileNow): same layout, same virtualization map, the mask as
    // given. The reference the checker trusts is "what a correct
    // backend produces", not what the shard handed back.
    codegen::LowerOptions opts;
    opts.layout = &image_.layout;
    opts.virtualized = slots_.empty() ? nullptr : &slots_;
    opts.ntMask = &mask;
    return codegen::lowerFunction(module_, module_.function(func),
                                  opts);
}

Tier1
Validator::structuralCheck(ir::FuncId func, const BitVector &mask,
                           const codegen::LoweredFunction &candidate,
                           std::string *reason,
                           uint64_t *insts_walked) const
{
    auto fail = [reason](std::string why) {
        if (reason)
            *reason = std::move(why);
        return Tier1::Refuted;
    };
    auto masked = [&mask](ir::LoadId id) {
        return id != ir::kInvalidId && id < mask.size() &&
            mask.test(id);
    };

    codegen::LoweredFunction reference =
        lowerVariant(func, BitVector(0));
    const std::vector<MInst> &orig = reference.code;
    const std::vector<MInst> &var = candidate.code;
    uint64_t total = orig.size() + var.size();
    if (insts_walked)
        *insts_walked = total;
    if (total > cfg_.irCheckMaxInsts) {
        if (reason)
            *reason = strformat(
                "walk budget: %llu insts > %llu",
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(
                    cfg_.irCheckMaxInsts));
        return Tier1::Inconclusive;
    }

    // Lockstep pairing walk: every original instruction must pair
    // with the next non-Hint candidate instruction, field for field;
    // candidate Hints are legal only as the immediate prefix of a
    // masked NT load. The pairing doubles as the address map that
    // the branch-target pass below checks against.
    std::vector<isa::CodeAddr> addrMap(orig.size(),
                                       isa::kInvalidCodeAddr);
    size_t i = 0, j = 0;
    bool hint_pending = false;
    while (i < orig.size()) {
        if (j >= var.size())
            return fail(strformat("variant truncated @%zu", i));
        const MInst &v = var[j];
        if (v.op == MOp::Hint) {
            if (hint_pending)
                return fail(strformat("doubled hint @%zu", j));
            if (!v.nonTemporal)
                return fail(
                    strformat("hint without nt bit @%zu", j));
            if (!masked(v.loadId))
                return fail(
                    strformat("hint on unmasked load @%zu", j));
            if (j + 1 >= var.size() ||
                var[j + 1].op != MOp::Load ||
                var[j + 1].loadId != v.loadId ||
                var[j + 1].rs1 != v.rs1 || var[j + 1].imm != v.imm)
                return fail(strformat("stray hint @%zu", j));
            hint_pending = true;
            ++j;
            continue;
        }
        const MInst &o = orig[i];
        // Labels resolve to block starts, and a block starting with
        // a masked load starts at its prefetch hint — so the
        // address image of `i` is the hint when one is pending.
        addrMap[i] =
            static_cast<isa::CodeAddr>(hint_pending ? j - 1 : j);
        if (o.op != v.op)
            return fail(strformat("opcode %s->%s @%zu",
                                  isa::mopName(o.op),
                                  isa::mopName(v.op), i));
        if (o.rd != v.rd || o.rs1 != v.rs1 || o.rs2 != v.rs2 ||
            o.imm != v.imm || o.evtSlot != v.evtSlot ||
            o.loadId != v.loadId)
            return fail(strformat("operand mismatch @%zu (%s)", i,
                                  isa::mopName(o.op)));
        if (o.op == MOp::Load) {
            bool want_nt = masked(o.loadId);
            if (v.nonTemporal != want_nt)
                return fail(strformat("nt bit flipped @%zu", i));
            if (want_nt && !hint_pending)
                return fail(
                    strformat("masked load missing hint @%zu", i));
            hint_pending = false;
        } else {
            if (v.nonTemporal != o.nonTemporal)
                return fail(strformat("nt bit flipped @%zu", i));
        }
        ++i;
        ++j;
    }
    if (j < var.size())
        return fail(strformat("variant has %zu trailing insts",
                              var.size() - j));

    // Branch targets through the address map. Both streams are
    // unrelocated, so targets are function-local indices.
    for (size_t k = 0; k < orig.size(); ++k) {
        const MInst &o = orig[k];
        if (o.op != MOp::Jmp && o.op != MOp::Bnz)
            continue;
        const MInst &v = var[addrMap[k]];
        if (o.target >= orig.size() ||
            v.target != addrMap[o.target])
            return fail(strformat("branch target @%zu", k));
    }
    // Direct-call fixups: same callees at paired offsets. (The
    // unrelocated target field itself is kInvalidCodeAddr on both
    // sides and already compared above.)
    if (reference.directCallFixups.size() !=
        candidate.directCallFixups.size())
        return fail("direct-call fixup count");
    for (size_t k = 0; k < reference.directCallFixups.size(); ++k) {
        auto [ro, rc] = reference.directCallFixups[k];
        auto [vo, vc] = candidate.directCallFixups[k];
        if (rc != vc || ro >= orig.size() || vo != addrMap[ro])
            return fail(strformat("direct-call fixup @%u", ro));
    }

    if (reason)
        *reason = "ok";
    return Tier1::Equivalent;
}

std::vector<MInst>
Validator::appendToImage(const codegen::LoweredFunction &fn,
                         isa::CodeAddr *entry) const
{
    std::vector<MInst> code = image_.code;
    *entry = static_cast<isa::CodeAddr>(code.size());
    codegen::LoweredFunction placed = fn;
    codegen::relocate(placed, *entry);
    code.insert(code.end(), placed.code.begin(), placed.code.end());
    for (auto [offset, callee] : placed.directCallFixups)
        code[*entry + offset].target =
            image_.function(callee).entry;
    return code;
}

std::array<uint64_t, 4>
Validator::diffArgs(ir::FuncId func, uint32_t index) const
{
    // Small seeded values: plausible counters/indices for the
    // generated workloads, and pure in (seed, func, input, arg) so
    // verdicts never depend on who asks or when.
    std::array<uint64_t, 4> args;
    for (uint32_t a = 0; a < args.size(); ++a) {
        args[a] = mix64(cfg_.seed ^ mix64(func * 8 + a) ^
                        mix64(index)) &
            0xff;
    }
    return args;
}

bool
Validator::differentialCheck(ir::FuncId func, const BitVector &mask,
                             const codegen::LoweredFunction
                                 &candidate,
                             uint64_t *steps,
                             std::string *reason) const
{
    // The execution reference is the *clean* variant under the same
    // mask — what a correct backend would have produced — placed in
    // an identical harness: the static image with the candidate
    // appended, EVT and data segment untouched, so calls out of the
    // variant dispatch to the original code on both sides.
    codegen::LoweredFunction clean = lowerVariant(func, mask);
    isa::CodeAddr ref_entry = 0, cand_entry = 0;
    std::vector<MInst> ref_prog = appendToImage(clean, &ref_entry);
    std::vector<MInst> cand_prog =
        appendToImage(candidate, &cand_entry);

    Sandbox ref_box(image_);
    Sandbox cand_box(image_);
    for (uint32_t k = 0; k < cfg_.diffInputs; ++k) {
        std::array<uint64_t, 4> args = diffArgs(func, k);
        SandboxResult a = ref_box.run(ref_prog, ref_entry, args,
                                      cfg_.diffStepLimit);
        SandboxResult b = cand_box.run(cand_prog, cand_entry, args,
                                       cfg_.diffStepLimit);
        if (steps)
            *steps += a.steps + b.steps;
        if (!a.equivalentTo(b)) {
            if (reason)
                *reason = strformat(
                    "input %u diverged: want [%s] got [%s]", k,
                    a.fingerprint().c_str(),
                    b.fingerprint().c_str());
            return false;
        }
    }
    if (reason)
        *reason = "ok";
    return true;
}

bool
Validator::osrCheck(ir::FuncId func, const BitVector &mask,
                    uint64_t *steps, std::string *reason) const
{
    codegen::LoweredFunction orig = lowerVariant(func, BitVector(0));
    codegen::LoweredFunction var = lowerVariant(func, mask);
    if (orig.osrSites.empty()) {
        if (reason)
            *reason = "no loops";
        return true;
    }

    // One composed program: the static image with the original and
    // the variant both appended, so a flipped run crosses from one
    // lowering into the other mid-loop — the same address geometry
    // the runtime's osrRedirect creates in the live process.
    std::vector<MInst> prog = image_.code;
    auto append = [this, &prog](const codegen::LoweredFunction &fn) {
        auto entry = static_cast<isa::CodeAddr>(prog.size());
        codegen::LoweredFunction placed = fn;
        codegen::relocate(placed, entry);
        prog.insert(prog.end(), placed.code.begin(),
                    placed.code.end());
        for (auto [offset, callee] : placed.directCallFixups)
            prog[entry + offset].target =
                image_.function(callee).entry;
        return entry;
    };
    isa::CodeAddr orig_entry = append(orig);
    isa::CodeAddr var_entry = append(var);

    Sandbox box(image_);
    static const uint64_t kFlipAfter[] = {0, 1, 3};
    for (uint32_t k = 0; k < cfg_.diffInputs; ++k) {
        std::array<uint64_t, 4> args = diffArgs(func, k);
        SandboxResult ref = box.run(prog, orig_entry, args,
                                    cfg_.diffStepLimit);
        if (steps)
            *steps += ref.steps;
        for (size_t si = 0; si < orig.osrSites.size(); ++si) {
            const codegen::OsrSite &s = orig.osrSites[si];
            if (s.header >= var.blockStarts.size()) {
                if (reason)
                    *reason = strformat(
                        "variant lost block %u", s.header);
                return false;
            }
            OsrFlip flip;
            flip.pc = orig_entry + s.offset;
            flip.dest = var_entry + var.blockStarts[s.header];
            for (uint64_t after : kFlipAfter) {
                flip.afterExecutions = after;
                SandboxResult got =
                    box.run(prog, orig_entry, args,
                            cfg_.diffStepLimit, &flip);
                if (steps)
                    *steps += got.steps;
                if (!got.equivalentTo(ref)) {
                    if (reason)
                        *reason = strformat(
                            "input %u site %zu after %llu "
                            "diverged: want [%s] got [%s]",
                            k, si,
                            static_cast<unsigned long long>(after),
                            ref.fingerprint().c_str(),
                            got.fingerprint().c_str());
                    return false;
                }
            }
        }
    }
    if (reason)
        *reason = "ok";
    return true;
}

Verdict
Validator::validate(const runtime::CompileJob &job,
                    const faults::MiscompileSpec *inject) const
{
    Verdict v;
    if (cfg_.mode == Mode::Off) {
        v.pass = true;
        v.reason = "gate off";
        return v;
    }
    if (job.func == ir::kInvalidId ||
        job.func >= module_.numFunctions())
        fatal("Validator: job for unknown function %u", job.func);

    const BitVector &mask = job.ntMask;
    codegen::LoweredFunction candidate =
        lowerVariant(job.func, mask);
    if (inject)
        v.injectedApplied =
            applyMiscompile(candidate.code, *inject);

    std::string reason;
    uint64_t walked = 0;
    Tier1 t1 = structuralCheck(job.func, mask, candidate, &reason,
                               &walked);
    v.cycles = cfg_.baseCycles + cfg_.irCheckCyclesPerInst * walked;

    if (t1 == Tier1::Refuted) {
        // Conclusive in every mode: the restricted transform had no
        // license to deviate, and the one class tier 2 is blind to
        // (a flipped NT bit) is refuted exactly here.
        v.pass = false;
        v.tier = 1;
        v.reason = std::move(reason);
        return v;
    }

    bool run_tier2 = false;
    if (t1 == Tier1::Inconclusive) {
        if (cfg_.mode == Mode::Ir) {
            // No tier 2 available: unproven code does not install.
            v.pass = false;
            v.tier = 1;
            v.reason = std::move(reason);
            return v;
        }
        run_tier2 = true;
    }
    if (cfg_.mode == Mode::Paranoid)
        run_tier2 = true;

    if (!run_tier2) {
        v.pass = true;
        v.tier = 1;
        v.reason = "ok";
        return v;
    }

    uint64_t steps = 0;
    std::string diff_reason;
    bool ok = differentialCheck(job.func, mask, candidate, &steps,
                                &diff_reason);
    v.cycles += cfg_.diffCyclesPerStep * steps;
    v.escalated = true;
    v.tier = 2;
    v.pass = ok;
    v.reason = std::move(diff_reason);
    return v;
}

} // namespace validate
} // namespace protean
