/**
 * @file
 * Translation validation for online NT-mask variants (DESIGN.md §12).
 *
 * PR 5's checksums catch *corrupted* variants; nothing before this
 * subsystem caught a *miscompiled* one — a self-consistent but wrong
 * instruction stream that the fleet service would happily install on
 * every shard and replica. The validator is the install gate that
 * closes that hole, with two tiers:
 *
 *  Tier 1 — structural equivalence modulo the NT mask. The protean
 *  transform is restricted by construction: relative to the original
 *  lowering, a variant may only (a) set the nonTemporal bit on
 *  exactly the masked loads and (b) insert the matching Hint
 *  immediately before each of them. The checker re-lowers the
 *  function with and without the mask and walks both streams in
 *  lockstep, pairing instructions (skipping variant Hints), checking
 *  every field, remapping branch targets through the pairing, and
 *  enforcing the Hint/NT discipline. *Any* deviation is a conclusive
 *  refutation — even a semantically harmless one, because the
 *  transform had no license to produce it. Linear time, no
 *  execution; cheap enough to gate every install.
 *
 *  Tier 2 — differential execution. When tier 1 cannot conclude
 *  (function beyond its walk budget) or when the mode escalates for
 *  defense in depth, original and candidate are run in a sandboxed
 *  interpreter (validate/sandbox.h) on seeded inputs and their
 *  architectural fingerprints compared: final registers, ordered
 *  memory-write digests, and HPM-style event counts (instructions
 *  net of hints, loads, stores, branches). Note the asymmetry tier 2
 *  cannot fix: a flipped NT bit is architecturally invisible, so
 *  only tier 1 catches that class — which is exactly why tier-1
 *  refutations are final and never "appealed" to tier 2.
 *
 * Escalation policy by mode:
 *   Off       gate disabled (FleetSim builds no validator).
 *   Ir        tier 1 only; an inconclusive tier 1 *rejects*
 *             (unproven code does not install).
 *   Diff      tier 1; inconclusive escalates to tier 2, which
 *             decides.
 *   Paranoid  tier 1; every tier-1 pass is additionally re-checked
 *             by tier 2 (both must pass).
 *
 * Verdicts are pure functions of (job, injected spec, config), so
 * the service may validate at install time inside advance() without
 * breaking serial-vs-parallel byte identity. Cycle costs are modeled
 * from instruction and step counts and charged to the shard backend
 * like compile cycles.
 */

#ifndef PROTEAN_VALIDATE_VALIDATOR_H
#define PROTEAN_VALIDATE_VALIDATOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "codegen/lowering.h"
#include "faults/plan.h"
#include "ir/module.h"
#include "isa/image.h"
#include "runtime/compiler.h"
#include "support/bitvector.h"
#include "validate/sandbox.h"

namespace protean {
namespace validate {

/** How hard the install gate tries (see file header for policy). */
enum class Mode : uint8_t { Off, Ir, Diff, Paranoid };

/** Parse "off|ir|diff|paranoid" (fatal on anything else). */
Mode parseMode(const std::string &s);

const char *modeName(Mode m);

/** Gate configuration and cycle cost model. */
struct ValidateConfig
{
    Mode mode = Mode::Ir;
    /** Seeded differential inputs per tier-2 check. */
    uint32_t diffInputs = 3;
    /** Non-hint instruction budget per sandboxed run. */
    uint64_t diffStepLimit = 50000;
    /** Seed for the differential input generator. */
    uint64_t seed = 0x7a11da7e;
    /** Tier-1 walk budget in instructions (both streams summed);
     *  beyond it tier 1 is inconclusive and escalates. */
    uint64_t irCheckMaxInsts = 1u << 20;
    // ----- modeled cycle costs, charged like compile cycles -----
    /** Fixed verdict overhead (dispatch, bookkeeping). */
    uint64_t baseCycles = 50;
    /** Tier-1 cost per instruction walked. */
    uint64_t irCheckCyclesPerInst = 2;
    /** Tier-2 cost per sandboxed non-hint instruction executed. */
    uint64_t diffCyclesPerStep = 4;
};

/** Tier-1 structural outcomes. */
enum class Tier1 : uint8_t {
    Equivalent,   ///< proved: original modulo the mask
    Refuted,      ///< the streams deviate beyond the NT discipline
    Inconclusive, ///< walk budget exceeded; tier 2 must decide
};

/** What the gate decided for one candidate variant. */
struct Verdict
{
    bool pass = false;
    /** Tier that decided (1 or 2). */
    uint8_t tier = 1;
    /** Tier 2 ran (inconclusive tier 1, or paranoid re-check). */
    bool escalated = false;
    /** Modeled validation cycles (deterministic). */
    uint64_t cycles = 0;
    /** An injected miscompile was actually applied to the stream. */
    bool injectedApplied = false;
    /** Short stable explanation ("ok", "nt bit flipped @12", ...). */
    std::string reason;
};

/**
 * Mutate a candidate instruction stream per an injected miscompile
 * spec (the fault plan's model of a buggy backend). Site selection
 * is spec.siteSeed modulo the eligible sites for the kind; returns
 * false (stream untouched) when the function has no eligible site —
 * a store-free function cannot drop a store.
 */
bool applyMiscompile(std::vector<isa::MInst> &code,
                     const faults::MiscompileSpec &spec);

/** The install gate. One instance serves a whole fleet: validation
 *  is stateless, so a single validator attached to the shared
 *  CompileService gates every shard's installs. */
class Validator
{
  public:
    /**
     * @param module The fleet binary's IR (outlives the validator).
     * @param image Its compiled image (EVT + data for tier 2).
     * @param slots Virtualization map lowering was performed under.
     * @param cfg Gate mode and cost model.
     */
    Validator(const ir::Module &module, const isa::Image &image,
              const codegen::VirtualizationMap &slots,
              const ValidateConfig &cfg);

    const ValidateConfig &config() const { return cfg_; }

    /**
     * Gate one completed compile. Re-lowers the variant the backend
     * claims to have built, applies `inject` (non-null = the fault
     * plan says this build came out miscompiled), and proves or
     * refutes equivalence per the configured mode. Pure: identical
     * inputs give identical verdicts, cycles included.
     */
    Verdict validate(const runtime::CompileJob &job,
                     const faults::MiscompileSpec *inject =
                         nullptr) const;

    /** Lower one function under a module-wide NT mask, exactly as
     *  the runtime compiler would (unrelocated; exposed for tests
     *  and for composing candidate streams). */
    codegen::LoweredFunction lowerVariant(ir::FuncId func,
                                          const BitVector &mask)
        const;

    /** Tier 1 alone: structural check of `candidate` against the
     *  function's reference lowering under `mask`. */
    Tier1 structuralCheck(ir::FuncId func, const BitVector &mask,
                          const codegen::LoweredFunction &candidate,
                          std::string *reason = nullptr,
                          uint64_t *insts_walked = nullptr) const;

    /** Tier 2 alone: differential execution of `candidate` against
     *  the function's clean lowering on the seeded inputs. Returns
     *  pass/fail; accumulates sandboxed steps into *steps. */
    bool differentialCheck(ir::FuncId func, const BitVector &mask,
                           const codegen::LoweredFunction &candidate,
                           uint64_t *steps,
                           std::string *reason = nullptr) const;

    /**
     * OSR state-equivalence check (DESIGN.md §14): for every loop
     * back-edge of `func` and several flip timings, run the original
     * lowering with a sandboxed OsrFlip that redirects that back-edge
     * into the variant's corresponding loop header mid-run, and
     * require the architectural fingerprint to match an uninterrupted
     * reference run. Passing means the register/stack-identity
     * compensation claim holds at every OSR point of this
     * (func, mask) pair: crossing lowerings at a back-edge is
     * architecturally invisible. Accumulates sandboxed steps into
     * *steps when non-null. Trivially true for loop-free functions.
     */
    bool osrCheck(ir::FuncId func, const BitVector &mask,
                  uint64_t *steps = nullptr,
                  std::string *reason = nullptr) const;

  private:
    const ir::Module &module_;
    const isa::Image &image_;
    codegen::VirtualizationMap slots_;
    ValidateConfig cfg_;

    /** Append `fn` (relocated, direct calls patched to the static
     *  image entries) to a copy of the image code; returns the
     *  entry address of the appended code via *entry. */
    std::vector<isa::MInst> appendToImage(
        const codegen::LoweredFunction &fn, isa::CodeAddr *entry)
        const;

    /** Seeded argument registers for differential input `index`. */
    std::array<uint64_t, 4> diffArgs(ir::FuncId func,
                                     uint32_t index) const;
};

} // namespace validate
} // namespace protean

#endif // PROTEAN_VALIDATE_VALIDATOR_H
