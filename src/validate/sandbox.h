/**
 * @file
 * Sandboxed PISA interpreter for differential validation.
 *
 * The tier-2 validator must execute *candidate* variant code — code a
 * (possibly miscompiled) backend just produced — and a miscompiled
 * instruction stream can do anything: jump past the end of the code
 * array, call through an unpatched direct-call slot, or compute an
 * unaligned address. The real sim::Core panics on all of those
 * (correct for vetted images, fatal for a validator), so the sandbox
 * is a separate functional interpreter with *identical architectural
 * semantics* (the same Div/Mod-by-zero rules, shift masking, register
 * windows, and EVT dispatch as sim/core.cc) that converts every
 * would-be panic into a trap recorded in the result.
 *
 * The sandbox is purely functional: no caches, no cycle costs, no
 * event queue. What it records is exactly what differential
 * validation compares — final register state, the ordered memory
 * write log (as a digest), and the architectural event counts the
 * HPM would have seen (instructions, loads, stores, branches) —
 * plus the trap, if any. Hints are counted separately and excluded
 * from the step budget so an NT variant and its original execute the
 * same number of budgeted instructions and stay comparable even when
 * both runs are cut off at the limit.
 */

#ifndef PROTEAN_VALIDATE_SANDBOX_H
#define PROTEAN_VALIDATE_SANDBOX_H

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/image.h"
#include "isa/minst.h"

namespace protean {
namespace validate {

/** Why a sandboxed run stopped before halting (None = clean halt). */
enum class Trap : uint8_t {
    None,          ///< ran to completion (Halt or top-level Ret)
    WildPc,        ///< fetched outside the code array
    UnpatchedCall, ///< CallDirect with an invalid target
    WildEvtSlot,   ///< CallIndirect through a slot past the EVT
    Unaligned,     ///< memory access not 8-byte aligned
    StepBudget,    ///< exceeded the per-run instruction budget
    CallDepth,     ///< call stack deeper than the sandbox allows
};

const char *trapName(Trap t);

/**
 * Functional model of an on-stack-replacement redirect for
 * differential validation (DESIGN.md §14): from its
 * `afterExecutions`-th *taken* transfer onward, the branch at `pc`
 * targets `dest` instead of its encoded target — exactly the visible
 * effect of runtime::RuntimeCompiler::osrRedirect patching a loop
 * back-edge while the loop is running. The sandbox applies no other
 * compensation, because the restricted NT-mask transform needs none:
 * a flipped run must fingerprint-match an uninterrupted one.
 */
struct OsrFlip
{
    isa::CodeAddr pc = isa::kInvalidCodeAddr;
    isa::CodeAddr dest = isa::kInvalidCodeAddr;
    /** Taken transfers of the branch before the redirect lands. */
    uint64_t afterExecutions = 0;
};

/** Architectural summary of one sandboxed run. */
struct SandboxResult
{
    Trap trap = Trap::None;
    /** Code address of the faulting fetch/instruction (trap only). */
    isa::CodeAddr trapPc = isa::kInvalidCodeAddr;
    /** Non-hint instructions executed (the budgeted count). */
    uint64_t steps = 0;
    uint64_t hints = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t branches = 0;
    /** Ordered memory-write log: FNV-1a over (addr, value) pairs. */
    uint64_t writeDigest = 0xcbf29ce484222325ULL;
    uint64_t writeCount = 0;
    /** Final register file. */
    std::array<uint64_t, isa::kNumMachineRegs> regs{};

    /**
     * Architectural fingerprint two equivalent runs must share. The
     * trap pc is deliberately excluded: equivalent code placed at
     * different base addresses traps at different pcs.
     */
    std::string fingerprint() const;

    /** True when two runs are architecturally indistinguishable. */
    bool equivalentTo(const SandboxResult &other) const
    {
        return fingerprint() == other.fingerprint();
    }
};

/**
 * One sandboxed machine. Memory is an overlay over the image's
 * initial data segment (reads fall through to initialData, then to
 * zero-fill, mirroring PagedMemory); each run() starts from a fresh
 * overlay and register file, so runs are independent and repeats are
 * bit-identical.
 */
class Sandbox
{
  public:
    /** Maximum call-stack depth before a CallDepth trap. */
    static constexpr size_t kMaxCallDepth = 512;

    explicit Sandbox(const isa::Image &image) : image_(image) {}

    /**
     * Run `code` from `entry` with r0..r3 = args until Halt,
     * top-level Ret, a trap, or `step_budget` non-hint instructions.
     * `code` is typically image.code with candidate variant code
     * appended; the EVT is read from the (overlaid) data segment, so
     * indirect calls dispatch exactly as on the real machine.
     *
     * `flip`, when non-null, models one OSR back-edge redirect
     * landing mid-run (see OsrFlip).
     */
    SandboxResult run(const std::vector<isa::MInst> &code,
                      isa::CodeAddr entry,
                      const std::array<uint64_t, 4> &args,
                      uint64_t step_budget,
                      const OsrFlip *flip = nullptr);

  private:
    const isa::Image &image_;
    /** Write overlay for the current run (word-addressed). */
    std::map<uint64_t, uint64_t> mem_;

    uint64_t readWord(uint64_t addr) const;
};

} // namespace validate
} // namespace protean

#endif // PROTEAN_VALIDATE_SANDBOX_H
