#include "validate/sandbox.h"

#include "support/logging.h"

namespace protean {
namespace validate {

using isa::MInst;
using isa::MOp;

const char *
trapName(Trap t)
{
    switch (t) {
      case Trap::None: return "none";
      case Trap::WildPc: return "wild-pc";
      case Trap::UnpatchedCall: return "unpatched-call";
      case Trap::WildEvtSlot: return "wild-evt-slot";
      case Trap::Unaligned: return "unaligned";
      case Trap::StepBudget: return "step-budget";
      case Trap::CallDepth: return "call-depth";
    }
    return "?";
}

std::string
SandboxResult::fingerprint() const
{
    // Registers folded into one FNV digest so the fingerprint stays
    // short enough to embed in verdict reasons and test failures.
    uint64_t rh = 0xcbf29ce484222325ULL;
    for (uint64_t v : regs) {
        for (int i = 0; i < 8; ++i) {
            rh ^= (v >> (8 * i)) & 0xff;
            rh *= 0x100000001b3ULL;
        }
    }
    return strformat(
        "trap=%s steps=%llu loads=%llu stores=%llu branches=%llu "
        "writes=%llu/%016llx regs=%016llx",
        trapName(trap), static_cast<unsigned long long>(steps),
        static_cast<unsigned long long>(loads),
        static_cast<unsigned long long>(stores),
        static_cast<unsigned long long>(branches),
        static_cast<unsigned long long>(writeCount),
        static_cast<unsigned long long>(writeDigest),
        static_cast<unsigned long long>(rh));
}

uint64_t
Sandbox::readWord(uint64_t addr) const
{
    auto it = mem_.find(addr);
    if (it != mem_.end())
        return it->second;
    // Fall through to the initial data segment, then zero-fill —
    // the same visible semantics as PagedMemory::loadImage + reads.
    if (addr + 8 <= image_.initialData.size())
        return image_.initialWord(addr);
    return 0;
}

SandboxResult
Sandbox::run(const std::vector<MInst> &code, isa::CodeAddr entry,
             const std::array<uint64_t, 4> &args,
             uint64_t step_budget, const OsrFlip *flip)
{
    SandboxResult res;
    mem_.clear();
    // Taken transfers of the OSR-flipped branch seen so far; once it
    // reaches flip->afterExecutions, the branch is "patched".
    uint64_t flip_taken = 0;

    std::array<uint64_t, isa::kNumMachineRegs> &r = res.regs;
    r.fill(0);
    for (size_t i = 0; i < args.size(); ++i)
        r[i] = args[i];

    constexpr uint32_t kSaved =
        isa::kNumMachineRegs - isa::kFirstGeneralReg;
    struct Frame
    {
        isa::CodeAddr ret;
        std::array<uint64_t, kSaved> saved;
    };
    std::vector<Frame> stack;

    auto trap = [&res](Trap t, isa::CodeAddr pc) {
        res.trap = t;
        res.trapPc = pc;
    };
    auto writeWord = [this, &res](uint64_t addr, uint64_t value) {
        mem_[addr] = value;
        // Order-sensitive digest: a dropped, reordered or re-valued
        // store changes it even when the final memory image agrees.
        for (uint64_t v : {addr, value}) {
            for (int i = 0; i < 8; ++i) {
                res.writeDigest ^= (v >> (8 * i)) & 0xff;
                res.writeDigest *= 0x100000001b3ULL;
            }
        }
        ++res.writeCount;
    };
    auto doCall = [&](isa::CodeAddr ret_pc, isa::CodeAddr target,
                      isa::CodeAddr at) -> isa::CodeAddr {
        if (stack.size() >= kMaxCallDepth) {
            trap(Trap::CallDepth, at);
            return at;
        }
        Frame f;
        f.ret = ret_pc;
        for (uint32_t i = 0; i < kSaved; ++i)
            f.saved[i] = r[isa::kFirstGeneralReg + i];
        stack.push_back(f);
        return target;
    };

    isa::CodeAddr pc = entry;
    bool halted = false;
    while (!halted && res.trap == Trap::None) {
        if (pc >= code.size()) {
            trap(Trap::WildPc, pc);
            break;
        }
        const MInst &inst = code[pc];
        if (inst.op != MOp::Hint) {
            if (res.steps >= step_budget) {
                trap(Trap::StepBudget, pc);
                break;
            }
            ++res.steps;
        }
        isa::CodeAddr next = pc + 1;
        bool transferred = false;

        switch (inst.op) {
          case MOp::Const:
            r[inst.rd] = static_cast<uint64_t>(inst.imm);
            break;
          case MOp::Mov:
            r[inst.rd] = r[inst.rs1];
            break;
          case MOp::Add: r[inst.rd] = r[inst.rs1] + r[inst.rs2]; break;
          case MOp::Sub: r[inst.rd] = r[inst.rs1] - r[inst.rs2]; break;
          case MOp::Mul: r[inst.rd] = r[inst.rs1] * r[inst.rs2]; break;
          case MOp::Div:
            r[inst.rd] =
                r[inst.rs2] == 0 ? 0 : r[inst.rs1] / r[inst.rs2];
            break;
          case MOp::Mod:
            r[inst.rd] = r[inst.rs2] == 0 ? r[inst.rs1]
                : r[inst.rs1] % r[inst.rs2];
            break;
          case MOp::And: r[inst.rd] = r[inst.rs1] & r[inst.rs2]; break;
          case MOp::Or: r[inst.rd] = r[inst.rs1] | r[inst.rs2]; break;
          case MOp::Xor: r[inst.rd] = r[inst.rs1] ^ r[inst.rs2]; break;
          case MOp::Shl:
            r[inst.rd] = r[inst.rs1] << (r[inst.rs2] & 63);
            break;
          case MOp::Shr:
            r[inst.rd] = r[inst.rs1] >> (r[inst.rs2] & 63);
            break;
          case MOp::CmpEq:
            r[inst.rd] = r[inst.rs1] == r[inst.rs2];
            break;
          case MOp::CmpNe:
            r[inst.rd] = r[inst.rs1] != r[inst.rs2];
            break;
          case MOp::CmpLt:
            r[inst.rd] = r[inst.rs1] < r[inst.rs2];
            break;
          case MOp::CmpLe:
            r[inst.rd] = r[inst.rs1] <= r[inst.rs2];
            break;
          case MOp::Load: {
            uint64_t addr =
                r[inst.rs1] + static_cast<uint64_t>(inst.imm);
            if (addr & 7) {
                trap(Trap::Unaligned, pc);
                break;
            }
            ++res.loads;
            r[inst.rd] = readWord(addr);
            break;
          }
          case MOp::Store: {
            uint64_t addr =
                r[inst.rs1] + static_cast<uint64_t>(inst.imm);
            if (addr & 7) {
                trap(Trap::Unaligned, pc);
                break;
            }
            ++res.stores;
            writeWord(addr, r[inst.rs2]);
            break;
          }
          case MOp::Hint:
            ++res.hints;
            break;
          case MOp::Jmp:
            ++res.branches;
            next = inst.target;
            if (flip && pc == flip->pc &&
                flip_taken++ >= flip->afterExecutions)
                next = flip->dest;
            transferred = true;
            break;
          case MOp::Bnz:
            ++res.branches;
            if (r[inst.rs1] != 0) {
                next = inst.target;
                if (flip && pc == flip->pc &&
                    flip_taken++ >= flip->afterExecutions)
                    next = flip->dest;
                transferred = true;
            }
            break;
          case MOp::CallDirect:
            ++res.branches;
            if (inst.target == isa::kInvalidCodeAddr) {
                trap(Trap::UnpatchedCall, pc);
                break;
            }
            next = doCall(pc + 1, inst.target, pc);
            transferred = true;
            break;
          case MOp::CallIndirect: {
            ++res.branches;
            if (inst.evtSlot >= image_.evtCount) {
                trap(Trap::WildEvtSlot, pc);
                break;
            }
            uint64_t slot_addr =
                image_.evtBase + 8ULL * inst.evtSlot;
            auto target =
                static_cast<isa::CodeAddr>(readWord(slot_addr));
            next = doCall(pc + 1, target, pc);
            transferred = true;
            break;
          }
          case MOp::Ret:
            ++res.branches;
            if (stack.empty()) {
                halted = true;
            } else {
                Frame f = stack.back();
                stack.pop_back();
                for (uint32_t i = 0; i < kSaved; ++i)
                    r[isa::kFirstGeneralReg + i] = f.saved[i];
                next = f.ret;
                transferred = true;
            }
            break;
          case MOp::Halt:
            halted = true;
            break;
          case MOp::Nop:
            break;
        }
        (void)transferred;
        pc = next;
    }
    return res;
}

} // namespace validate
} // namespace protean
