/**
 * @file
 * pcc — the protean code compiler (paper Section III-A).
 *
 * pcc readies a program for runtime compilation by
 *  (1) virtualizing a subset of control-flow edges: direct calls to
 *      selected callees become indirect calls through the Edge
 *      Virtualization Table (EVT); and
 *  (2) embedding metadata in the binary: the EVT itself plus the
 *      serialized, compressed IR, laid out in the data region behind
 *      a discovery header.
 *
 * The produced binary runs unmodified without any runtime attached
 * (the indirect calls simply keep routing to the original function
 * entries), which is the deployability property the paper stresses.
 */

#ifndef PROTEAN_PCC_PCC_H
#define PROTEAN_PCC_PCC_H

#include <vector>

#include "codegen/lowering.h"
#include "ir/module.h"
#include "isa/image.h"

namespace protean {
namespace pcc {

/** Which call edges to virtualize (DESIGN.md ablation axis). */
enum class EdgePolicy : uint8_t {
    /** No virtualization (plain binary). */
    None,
    /** Calls whose callee has more than one basic block — the
     *  paper's production policy. */
    MultiBlockCallees,
    /** Every call edge. */
    AllCallees,
};

/** Compilation options. */
struct PccOptions
{
    EdgePolicy policy = EdgePolicy::MultiBlockCallees;
    /** Embed the compressed IR blob (required by runtimes). */
    bool embedIr = true;
    /** Name of the entry function. */
    std::string entryName = "main";
};

/**
 * Select the callees to virtualize under a policy.
 * @return Map from callee FuncId to its assigned EVT slot.
 */
codegen::VirtualizationMap
chooseVirtualizedCallees(const ir::Module &module, EdgePolicy policy);

/**
 * Compile a module into an executable image.
 * Renumbers loads, verifies, lowers every function, lays out the
 * data region, and embeds metadata per the options.
 */
isa::Image compile(ir::Module &module, const PccOptions &opts
                   = PccOptions{});

/** Compile without any protean preparation (baseline binaries). */
isa::Image compilePlain(ir::Module &module,
                        const std::string &entry_name = "main");

} // namespace pcc
} // namespace protean

#endif // PROTEAN_PCC_PCC_H
