#include "pcc/pcc.h"

#include "ir/serializer.h"
#include "ir/verifier.h"
#include "support/logging.h"

namespace protean {
namespace pcc {

namespace {

uint64_t
alignUp(uint64_t v, uint64_t a)
{
    return (v + a - 1) / a * a;
}

} // namespace

codegen::VirtualizationMap
chooseVirtualizedCallees(const ir::Module &module, EdgePolicy policy)
{
    codegen::VirtualizationMap map;
    if (policy == EdgePolicy::None)
        return map;
    uint32_t slot = 0;
    for (ir::FuncId f = 0; f < module.numFunctions(); ++f) {
        const ir::Function &fn = module.function(f);
        bool eligible = policy == EdgePolicy::AllCallees ||
            fn.numBlocks() > 1;
        if (eligible)
            map[f] = slot++;
    }
    return map;
}

isa::Image
compile(ir::Module &module, const PccOptions &opts)
{
    module.renumberLoads();
    ir::verifyOrDie(module);

    const ir::Function *entry = module.findFunction(opts.entryName);
    if (!entry)
        fatal("pcc: module %s has no entry function '%s'",
              module.name().c_str(), opts.entryName.c_str());

    isa::Image image;
    image.name = module.name();
    image.entryFunc = entry->id();

    // --- Edge virtualization decisions.
    codegen::VirtualizationMap vmap =
        chooseVirtualizedCallees(module, opts.policy);
    image.evtCount = static_cast<uint32_t>(vmap.size());
    image.evtSlotFunc.assign(vmap.size(), ir::kInvalidId);
    for (auto [func, slot] : vmap)
        image.evtSlotFunc[slot] = func;

    // --- IR blob.
    std::vector<uint8_t> ir_blob;
    if (opts.embedIr)
        ir_blob = ir::serializeCompressed(module);

    // --- Data layout: header | EVT | IR | globals.
    uint64_t cursor = isa::kHdrBytes;
    image.evtBase = image.evtCount > 0 ? cursor : 0;
    cursor += 8ULL * image.evtCount;
    cursor = alignUp(cursor, 64);
    image.irBase = ir_blob.empty() ? 0 : cursor;
    image.irSizeBytes = ir_blob.size();
    cursor += ir_blob.size();
    cursor = alignUp(cursor, 64);

    image.layout.globalBase.resize(module.numGlobals());
    for (const auto &g : module.globals()) {
        image.layout.globalBase[g.id] = cursor;
        cursor += alignUp(g.sizeBytes, 8);
        cursor = alignUp(cursor, 64);
    }
    image.layout.sizeBytes = cursor;

    // --- Lower every function.
    codegen::LowerOptions lopts;
    lopts.layout = &image.layout;
    lopts.virtualized = vmap.empty() ? nullptr : &vmap;

    std::vector<std::pair<uint32_t, ir::FuncId>> fixups;
    for (ir::FuncId f = 0; f < module.numFunctions(); ++f) {
        const ir::Function &fn = module.function(f);
        codegen::LoweredFunction lowered =
            codegen::lowerFunction(module, fn, lopts);

        isa::FunctionInfo fi;
        fi.name = fn.name();
        fi.irFunc = f;
        fi.entry = static_cast<isa::CodeAddr>(image.code.size());
        codegen::relocate(lowered, fi.entry);
        for (auto [offset, callee] : lowered.directCallFixups)
            fixups.emplace_back(fi.entry + offset, callee);
        image.code.insert(image.code.end(), lowered.code.begin(),
                          lowered.code.end());
        fi.end = static_cast<isa::CodeAddr>(image.code.size());
        image.functions.push_back(std::move(fi));
    }
    for (auto [addr, callee] : fixups)
        image.code[addr].target = image.functions[callee].entry;

    // --- Initial data contents. Binaries with no protean metadata
    // (plain baseline compiles) carry no discovery header, so the
    // runtime refuses to attach to them.
    image.initialData.assign(image.layout.sizeBytes, 0);
    if (image.evtCount == 0 && ir_blob.empty())
        return image;
    image.setInitialWord(isa::kHdrMagic, isa::kImageMagic);
    image.setInitialWord(isa::kHdrEvtBase, image.evtBase);
    image.setInitialWord(isa::kHdrEvtCount, image.evtCount);
    image.setInitialWord(isa::kHdrIrBase, image.irBase);
    image.setInitialWord(isa::kHdrIrSize, image.irSizeBytes);
    image.setInitialWord(isa::kHdrDataSize, image.layout.sizeBytes);

    for (uint32_t slot = 0; slot < image.evtCount; ++slot) {
        ir::FuncId f = image.evtSlotFunc[slot];
        image.setInitialWord(image.evtBase + 8ULL * slot,
                             image.functions[f].entry);
    }
    for (size_t i = 0; i < ir_blob.size(); ++i)
        image.initialData[image.irBase + i] = ir_blob[i];

    return image;
}

isa::Image
compilePlain(ir::Module &module, const std::string &entry_name)
{
    PccOptions opts;
    opts.policy = EdgePolicy::None;
    opts.embedIr = false;
    opts.entryName = entry_name;
    return compile(module, opts);
}

} // namespace pcc
} // namespace protean
