/**
 * @file
 * Datacenter scale-out analysis (paper Section V-E, Figures 17-18).
 *
 * Models a 10k-server cluster where every server co-runs one
 * latency-sensitive instance with one batch instance under PC3D.
 * A no-co-location policy needs the same 10k servers for the
 * latency-sensitive tier plus one extra dedicated server per unit of
 * batch throughput to match the PC3D cluster's output.
 *
 * Energy uses the linear CPU-utilization power model the paper
 * cites (Barroso et al.): P(u) = Pidle + (Ppeak - Pidle) * u, with
 * idle power a configurable fraction of peak. Efficiency is
 * throughput per Watt; since both clusters deliver identical
 * throughput by construction, the efficiency ratio is the inverse
 * power ratio.
 */

#ifndef PROTEAN_DATACENTER_SCALEOUT_H
#define PROTEAN_DATACENTER_SCALEOUT_H

#include <string>
#include <vector>

namespace protean {
namespace datacenter {

/** Cluster and power-model parameters. */
struct ScaleOutParams
{
    /** Servers in the PC3D-enabled cluster. */
    uint32_t baseServers = 10000;
    /** Idle power as a fraction of peak. */
    double idlePowerFraction = 0.5;
    uint32_t coresPerServer = 4;
    /** CPU busy fraction of a latency-sensitive instance at the
     *  modeled load level. */
    double lsBusyFraction = 0.45;
};

/** Result for one (webservice, batch-mix) pairing. */
struct ScaleOutResult
{
    std::string service;
    std::string mixName;
    /** Mean batch utilization under PC3D across the mix. */
    double meanUtilization = 0.0;
    uint32_t pc3dServers = 0;
    /** Total servers under the no-co-location policy. */
    uint32_t noColoServers = 0;
    /** PC3D energy efficiency normalized to no-co-location. */
    double energyEfficiencyRatio = 0.0;
};

/**
 * Analyze one pairing.
 * @param service Webservice name (labeling only).
 * @param mix_name Batch-mix label (Table III: WL1-WL3).
 * @param batch_utils Per-application PC3D utilization for the mix's
 *        members (from colocation experiments).
 */
ScaleOutResult analyzeMix(const std::string &service,
                          const std::string &mix_name,
                          const std::vector<double> &batch_utils,
                          const ScaleOutParams &params
                          = ScaleOutParams{});

/** The paper's Table III batch mixes. */
const std::vector<std::pair<std::string,
                            std::vector<std::string>>> &tableThreeMixes();

} // namespace datacenter
} // namespace protean

#endif // PROTEAN_DATACENTER_SCALEOUT_H
