#include "datacenter/fleet_calibration.h"

#include <memory>

#include "fleet/client.h"
#include "fleet/cluster.h"
#include "runtime/runtime.h"
#include "support/logging.h"

namespace protean {
namespace datacenter {

FleetMixResult
analyzeMixFromFleet(const std::string &service_name,
                    const std::string &mix_name,
                    const std::vector<std::string> &batches,
                    const ScaleOutParams &params,
                    const FleetMixConfig &fcfg)
{
    if (batches.empty())
        fatal("analyzeMixFromFleet: empty mix");
    if (fcfg.serversPerApp == 0)
        fatal("analyzeMixFromFleet: serversPerApp must be > 0");

    fleet::CompileService svc(fcfg.compileService);
    fleet::Cluster cluster(svc);

    // One cell per (member, replica): a whole colocated server. All
    // cells running the same batch binary produce identical content
    // keys, which is what the shared service dedups.
    std::vector<std::unique_ptr<ColoCell>> cells;
    uint32_t server_id = 0;
    for (const std::string &batch : batches) {
        for (uint32_t r = 0; r < fcfg.serversPerApp; ++r) {
            ColoConfig cfg;
            cfg.service = fcfg.service;
            cfg.batch = batch;
            cfg.qosTarget = fcfg.qosTarget;
            cfg.qps = fcfg.qps;
            cfg.system = System::Pc3d;
            cfg.settleMs = fcfg.settleMs;
            cfg.measureMs = fcfg.measureMs;
            cfg.machine = fcfg.machine;
            if (fcfg.remoteBackend) {
                uint32_t id = server_id;
                cfg.backendFactory =
                    [&svc, id, &fcfg](sim::Machine &m,
                                      uint32_t runtime_core) {
                        return std::make_unique<
                            fleet::RemoteBackend>(
                            svc, m, id, runtime_core,
                            fcfg.installCycles);
                    };
            }
            cells.push_back(std::make_unique<ColoCell>(cfg));
            cluster.addMachine(cells.back()->machine());
            ++server_id;
        }
    }

    uint64_t settle = fcfg.machine.msToCycles(fcfg.settleMs);
    uint64_t measure = fcfg.machine.msToCycles(fcfg.measureMs);
    cluster.runFor(settle);
    for (auto &cell : cells)
        cell->beginMeasure();
    cluster.runFor(measure);

    FleetMixResult res;
    size_t i = 0;
    for (size_t b = 0; b < batches.size(); ++b) {
        double util = 0.0;
        double qos = 0.0;
        for (uint32_t r = 0; r < fcfg.serversPerApp; ++r, ++i) {
            ColoResult cr = cells[i]->finish();
            util += cr.utilization;
            qos += cr.qos;
            res.serverCompileCycles +=
                cells[i]->runtime()->compiler().compileCycles();
        }
        res.utils.push_back(util / fcfg.serversPerApp);
        res.qos.push_back(qos / fcfg.serversPerApp);
    }

    res.service = svc.stats();
    svc.exportObsMetrics();
    res.scaleout = analyzeMix(service_name, mix_name, res.utils,
                              params);
    return res;
}

} // namespace datacenter
} // namespace protean
