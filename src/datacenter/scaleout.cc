#include "datacenter/scaleout.h"

#include <cmath>

#include "support/logging.h"
#include "support/stats.h"

namespace protean {
namespace datacenter {

namespace {

/** Linear CPU-utilization power model, in units of peak power. */
double
serverPower(double util, double idle_fraction)
{
    return idle_fraction + (1.0 - idle_fraction) * util;
}

} // namespace

ScaleOutResult
analyzeMix(const std::string &service, const std::string &mix_name,
           const std::vector<double> &batch_utils,
           const ScaleOutParams &params)
{
    if (batch_utils.empty())
        fatal("analyzeMix: empty utilization vector");

    ScaleOutResult r;
    r.service = service;
    r.mixName = mix_name;
    r.meanUtilization = mean(batch_utils);
    r.pc3dServers = params.baseServers;

    // No-co-location: the LS tier keeps its 10k servers; matching the
    // PC3D cluster's batch throughput takes one dedicated (full
    // speed) server per unit of achieved utilization.
    double extra = static_cast<double>(params.baseServers) *
        r.meanUtilization;
    r.noColoServers = params.baseServers +
        static_cast<uint32_t>(std::ceil(extra));

    // Per-server CPU utilization: each instance occupies one core.
    double cores = params.coresPerServer;
    double ls_util = params.lsBusyFraction / cores;
    double batch_util = r.meanUtilization / cores;

    double p_pc3d = static_cast<double>(params.baseServers) *
        serverPower(ls_util + batch_util, params.idlePowerFraction);
    double p_nocolo =
        static_cast<double>(params.baseServers) *
            serverPower(ls_util, params.idlePowerFraction) +
        extra * serverPower(1.0 / cores, params.idlePowerFraction);

    // Equal throughput by construction: efficiency ratio is the
    // inverse power ratio.
    r.energyEfficiencyRatio = p_nocolo / p_pc3d;
    return r;
}

const std::vector<std::pair<std::string, std::vector<std::string>>> &
tableThreeMixes()
{
    static const std::vector<
        std::pair<std::string, std::vector<std::string>>> mixes = {
        {"WL1", {"libquantum", "bzip2", "sphinx3", "milc"}},
        {"WL2", {"soplex", "bst", "milc", "lbm"}},
        {"WL3", {"sledge", "soplex", "sphinx3", "libquantum"}},
    };
    return mixes;
}

} // namespace datacenter
} // namespace protean
