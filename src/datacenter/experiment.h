/**
 * @file
 * Colocation experiment harness.
 *
 * Runs one (latency-sensitive app, batch app, QoS target, mitigation
 * system) cell of the paper's evaluation on a simulated server:
 *  - core 0: the latency-sensitive application (with a QPS driver
 *    when it is a service);
 *  - core 1: the batch application (protean binary);
 *  - core 2: the runtime (PC3D's compiles and analysis are charged
 *    here);
 *  - core 3: spare.
 *
 * The harness measures batch utilization (host BPS normalized to the
 * non-protean binary running alone) and delivered co-runner QoS
 * (IPS normalized to the flux-probe solo reference), the two axes of
 * Figures 9-15, and can record a timeline for Figure 16.
 */

#ifndef PROTEAN_DATACENTER_EXPERIMENT_H
#define PROTEAN_DATACENTER_EXPERIMENT_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/config.h"
#include "workloads/driver.h"

namespace protean {

namespace runtime {
class CompileBackend;
class ProteanRuntime;
}

namespace sim {
class Machine;
}

namespace datacenter {

/** Mitigation system under test. */
enum class System : uint8_t {
    None,  ///< co-locate with no mitigation
    ReQos, ///< nap-only baseline
    Pc3d,  ///< protean code + PC3D
};

/** One experiment cell. */
struct ColoConfig
{
    /** Latency-sensitive application (a service registry name). */
    std::string service = "web-search";
    /** Batch application (a batch registry name). */
    std::string batch = "libquantum";
    double qosTarget = 0.95;
    /** Service load; ignored when qpsTrace is set. */
    double qps = 60.0;
    /** Optional piecewise load trace (Figure 16). */
    std::vector<workloads::LoadStep> qpsTrace;
    System system = System::Pc3d;
    /** Time allowed for warmup + search before measuring. */
    double settleMs = 6000.0;
    /** Measurement duration. */
    double measureMs = 4000.0;
    /** Machine configuration. */
    sim::MachineConfig machine;
    /** Override PC3D evaluation-window length (0 = default). */
    double pc3dWindowMs = 0.0;
    /**
     * Optional compile-backend factory (Pc3d only). Called with the
     * cell's machine and the runtime core once both exist; the
     * returned backend is owned by the cell and handed to the
     * runtime. nullptr keeps the local (on-server) compiler. A
     * fleet::RemoteBackend factory routes this cell's compiles
     * through a shared fleet compilation service.
     */
    std::function<std::unique_ptr<runtime::CompileBackend>(
        sim::Machine &, uint32_t)> backendFactory;
};

/** Timeline sample for trace experiments. */
struct TraceSample
{
    double tMs = 0.0;
    double qps = 0.0;
    /** Host (batch) branches per cycle. */
    double hostBpc = 0.0;
    /** Co-runner QoS estimate. */
    double qos = 0.0;
    /** Runtime share of server cycles over the sample window. */
    double runtimeShare = 0.0;
    double nap = 0.0;
};

/** Experiment outputs. */
struct ColoResult
{
    /** Host BPS normalized to solo (the utilization metric). */
    double utilization = 0.0;
    /** Mean co-runner QoS over the measurement period. */
    double qos = 0.0;
    /** Runtime's share of all server cycles. */
    double runtimeShare = 0.0;
    /** Final nap intensity. */
    double nap = 0.0;
    /** PC3D search-space accounting (Pc3d only). */
    size_t fullLoads = 0;
    size_t activeLoads = 0;
    size_t maxDepthLoads = 0;
    /** Timeline (filled when sampleMs > 0 in runColocationTrace). */
    std::vector<TraceSample> trace;
};

struct ColoCellImpl;

/**
 * One live colocation cell, exposed for fleet experiments: N cells
 * (each its own server) can be advanced in lockstep by
 * fleet::Cluster while sharing one compilation service through
 * ColoConfig::backendFactory. runColocation() is the single-cell
 * convenience wrapper.
 */
class ColoCell
{
  public:
    explicit ColoCell(const ColoConfig &cfg);
    ~ColoCell();

    ColoCell(const ColoCell &) = delete;
    ColoCell &operator=(const ColoCell &) = delete;

    sim::Machine &machine();
    const ColoConfig &config() const { return cfg_; }

    /** The cell's protean runtime; nullptr unless system == Pc3d. */
    runtime::ProteanRuntime *runtime();

    /** Snapshot counters; call once the cell has settled. */
    void beginMeasure();

    /** Measure from the beginMeasure() snapshot to now. */
    ColoResult finish();

    /** Internal rig access (experiment.cc and trace harness). */
    ColoCellImpl &impl() { return *impl_; }

  private:
    ColoConfig cfg_;
    std::unique_ptr<ColoCellImpl> impl_;
};

/** Run one colocation cell. */
ColoResult runColocation(const ColoConfig &cfg);

/**
 * Run one cell while recording a timeline every sample_ms.
 * The run lasts cfg.settleMs + cfg.measureMs; utilization/qos are
 * still measured over the final cfg.measureMs.
 */
ColoResult runColocationTrace(const ColoConfig &cfg, double sample_ms);

/**
 * Solo BPS (branches per cycle) of the non-protean batch binary
 * running alone; memoized per (batch, machine geometry).
 */
double soloBatchBpc(const std::string &batch,
                    const sim::MachineConfig &mcfg);

} // namespace datacenter
} // namespace protean

#endif // PROTEAN_DATACENTER_EXPERIMENT_H
