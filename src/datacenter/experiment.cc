#include "datacenter/experiment.h"

#include <map>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "pc3d/pc3d.h"
#include "pcc/pcc.h"
#include "reqos/reqos.h"
#include "runtime/runtime.h"
#include "sim/machine.h"
#include "support/logging.h"
#include "workloads/registry.h"

namespace protean {
namespace datacenter {

namespace {

constexpr uint32_t kServiceCore = 0;
constexpr uint32_t kBatchCore = 1;
constexpr uint32_t kRuntimeCore = 2;

} // namespace

/** Everything a running colocation needs, with stable lifetimes. */
struct ColoCellImpl
{
    sim::Machine machine;
    ir::Module svcModule;
    ir::Module batchModule;
    isa::Image svcImage;
    isa::Image batchImage;
    sim::Process *svc = nullptr;
    sim::Process *batch = nullptr;
    std::unique_ptr<workloads::ServiceDriver> driver;
    std::unique_ptr<runtime::NapGovernor> governor;
    std::unique_ptr<runtime::QosMonitor> qos;
    std::unique_ptr<runtime::CompileBackend> backend;
    std::unique_ptr<runtime::ProteanRuntime> rt;
    std::unique_ptr<pc3d::Pc3dEngine> engine;
    std::unique_ptr<reqos::ReQosController> reqos;

    /** Measurement snapshot (beginMeasure / finish). */
    sim::HpmCounters host0;
    sim::HpmCounters co0;
    uint64_t measureStart = 0;
    bool measuring = false;

    explicit ColoCellImpl(const ColoConfig &cfg)
        : machine(cfg.machine),
          svcModule(workloads::buildService(
              workloads::serviceSpec(cfg.service))),
          batchModule(workloads::buildBatch(
              workloads::batchSpec(cfg.batch)))
    {
        if (cfg.machine.numCores < 3)
            fatal("runColocation: needs at least 3 cores");

        svcImage = pcc::compilePlain(svcModule);
        svc = &machine.load(svcImage, kServiceCore);

        batchImage = pcc::compile(batchModule);
        batch = &machine.load(batchImage, kBatchCore);

        uint64_t req = workloads::globalAddr(
            svcImage, svcModule, workloads::kServiceReqGlobal);
        uint64_t done = workloads::globalAddr(
            svcImage, svcModule, workloads::kServiceDoneGlobal);
        driver = std::make_unique<workloads::ServiceDriver>(
            machine, *svc, req, done);
        if (!cfg.qpsTrace.empty())
            driver->setTrace(cfg.qpsTrace);
        else
            driver->setQps(cfg.qps);
        driver->start();

        governor = std::make_unique<runtime::NapGovernor>(machine,
                                                          kBatchCore);
        qos = std::make_unique<runtime::QosMonitor>(
            machine, *governor,
            std::vector<uint32_t>{kServiceCore});

        switch (cfg.system) {
          case System::Pc3d: {
            runtime::RuntimeOptions ropts;
            ropts.runtimeCore = kRuntimeCore;
            if (cfg.backendFactory) {
                backend = cfg.backendFactory(machine, kRuntimeCore);
                ropts.compileBackend = backend.get();
            }
            rt = std::make_unique<runtime::ProteanRuntime>(
                machine, *batch, ropts);
            pc3d::Pc3dOptions popts;
            popts.qosTarget = cfg.qosTarget;
            if (cfg.pc3dWindowMs > 0.0)
                popts.windowMs = cfg.pc3dWindowMs;
            engine = std::make_unique<pc3d::Pc3dEngine>(*qos, popts);
            rt->setEngine(engine.get());
            rt->start();
            break;
          }
          case System::ReQos: {
            reqos::ReQosOptions qopts;
            qopts.qosTarget = cfg.qosTarget;
            reqos = std::make_unique<reqos::ReQosController>(
                machine, *governor, *qos, qopts);
            reqos->start();
            break;
          }
          case System::None:
            qos->start();
            break;
        }
    }

    double
    currentNap() const
    {
        return governor->controllerNap();
    }

    uint64_t
    runtimeCycles() const
    {
        return rt ? rt->runtimeCycles() : 0;
    }
};

namespace {

ColoResult
finalize(const ColoConfig &cfg, ColoCellImpl &rig, ColoResult result,
         uint64_t measure_cycles, const sim::HpmCounters &host0,
         const sim::HpmCounters &co0)
{
    sim::HpmCounters host =
        rig.machine.core(kBatchCore).hpm() - host0;
    sim::HpmCounters co =
        rig.machine.core(kServiceCore).hpm() - co0;

    double host_bpc = measure_cycles == 0 ? 0.0 :
        static_cast<double>(host.branches) /
        static_cast<double>(measure_cycles);
    result.utilization =
        host_bpc / soloBatchBpc(cfg.batch, cfg.machine);

    double solo = rig.qos->soloIps(kServiceCore);
    double co_ips = measure_cycles == 0 ? 0.0 :
        static_cast<double>(co.instructions) /
        static_cast<double>(measure_cycles);
    result.qos = solo > 0.0 ? std::min(co_ips / solo, 1.1) : 1.0;

    result.nap = rig.currentNap();
    if (rig.rt) {
        result.runtimeShare = rig.rt->serverCycleShare();
        result.fullLoads = rig.engine->space().fullProgramLoads;
        result.activeLoads = rig.engine->space().activeRegionLoads;
        result.maxDepthLoads = rig.engine->space().maxDepthLoads;
        obs::metrics().gauge("runtime.server_cycle_share")
            .set(result.runtimeShare);
    }
    rig.machine.exportObsMetrics();
    obs::metrics().gauge("experiment.utilization")
        .set(result.utilization);
    obs::metrics().gauge("experiment.qos").set(result.qos);
    return result;
}

} // namespace

double
soloBatchBpc(const std::string &batch, const sim::MachineConfig &mcfg)
{
    // Memoized per batch name + geometry fingerprint.
    static std::map<std::string, double> cache;
    std::string key = strformat("%s/%u/%u/%llu", batch.c_str(),
                                mcfg.l3.sizeBytes, mcfg.dramLatency,
                                static_cast<unsigned long long>(
                                    mcfg.cyclesPerMs));
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;

    sim::Machine machine(mcfg);
    ir::Module module =
        workloads::buildBatch(workloads::batchSpec(batch));
    isa::Image image = pcc::compilePlain(module);
    machine.load(image, 0);

    machine.runFor(machine.msToCycles(300.0)); // warm caches
    sim::HpmCounters before = machine.core(0).hpm();
    uint64_t cycles = machine.msToCycles(1200.0);
    machine.runFor(cycles);
    sim::HpmCounters delta = machine.core(0).hpm() - before;
    double bpc = static_cast<double>(delta.branches) /
        static_cast<double>(cycles);
    cache[key] = bpc;
    return bpc;
}

ColoCell::ColoCell(const ColoConfig &cfg)
    : cfg_(cfg), impl_(std::make_unique<ColoCellImpl>(cfg))
{
}

ColoCell::~ColoCell() = default;

sim::Machine &
ColoCell::machine()
{
    return impl_->machine;
}

runtime::ProteanRuntime *
ColoCell::runtime()
{
    return impl_->rt.get();
}

void
ColoCell::beginMeasure()
{
    impl_->host0 = impl_->machine.core(kBatchCore).hpm();
    impl_->co0 = impl_->machine.core(kServiceCore).hpm();
    impl_->measureStart = impl_->machine.now();
    impl_->measuring = true;
}

ColoResult
ColoCell::finish()
{
    if (!impl_->measuring)
        fatal("ColoCell::finish called before beginMeasure");
    uint64_t cycles = impl_->machine.now() - impl_->measureStart;
    return finalize(cfg_, *impl_, ColoResult{}, cycles,
                    impl_->host0, impl_->co0);
}

ColoResult
runColocation(const ColoConfig &cfg)
{
    ColoCell cell(cfg);
    cell.machine().runFor(cell.machine().msToCycles(cfg.settleMs));
    cell.beginMeasure();
    cell.machine().runFor(cell.machine().msToCycles(cfg.measureMs));
    return cell.finish();
}

ColoResult
runColocationTrace(const ColoConfig &cfg, double sample_ms)
{
    if (sample_ms <= 0.0)
        fatal("runColocationTrace: sample_ms must be positive");
    ColoCellImpl rig(cfg);
    ColoResult result;

    double total_ms = cfg.settleMs + cfg.measureMs;
    uint64_t sample = rig.machine.msToCycles(sample_ms);
    // The timeline rides on the tracer: per-core HPM tracks plus the
    // experiment-level signals sampled below.
    rig.machine.startObsSampling(sample_ms);

    sim::HpmCounters host0, co0;
    uint64_t measure_start =
        rig.machine.msToCycles(cfg.settleMs);
    uint64_t measure_cycles = rig.machine.msToCycles(cfg.measureMs);
    bool measuring = false;

    sim::HpmCounters last_host = rig.machine.core(kBatchCore).hpm();
    sim::HpmCounters last_co = rig.machine.core(kServiceCore).hpm();
    uint64_t last_rtc = 0;
    uint64_t start = rig.machine.now();

    for (double t = 0.0; t < total_ms; t += sample_ms) {
        rig.machine.run(start + rig.machine.msToCycles(t) + sample);

        if (!measuring &&
            rig.machine.now() - start >= measure_start) {
            host0 = rig.machine.core(kBatchCore).hpm();
            co0 = rig.machine.core(kServiceCore).hpm();
            measuring = true;
        }

        sim::HpmCounters host = rig.machine.core(kBatchCore).hpm();
        sim::HpmCounters co = rig.machine.core(kServiceCore).hpm();
        sim::HpmCounters dh = host - last_host;
        sim::HpmCounters dc = co - last_co;
        last_host = host;
        last_co = co;

        TraceSample s;
        s.tMs = t + sample_ms;
        s.qps = rig.driver->currentQps();
        s.hostBpc = static_cast<double>(dh.branches) /
            static_cast<double>(sample);
        double solo = rig.qos->soloIps(kServiceCore);
        double co_ips = static_cast<double>(dc.instructions) /
            static_cast<double>(sample);
        s.qos = solo > 0.0 ? std::min(co_ips / solo, 1.2) : 1.0;
        uint64_t rtc = rig.runtimeCycles();
        s.runtimeShare = static_cast<double>(rtc - last_rtc) /
            (static_cast<double>(sample) *
             rig.machine.numCores());
        last_rtc = rtc;
        s.nap = rig.currentNap();
        obs::Tracer &tr = obs::tracer();
        tr.counter("experiment", "qps", s.qps);
        tr.counter("experiment", "host_bpc", s.hostBpc);
        tr.counter("experiment", "qos", s.qos);
        tr.counter("experiment", "runtime_share", s.runtimeShare);
        tr.counter("experiment", "nap", s.nap);
        result.trace.push_back(s);
    }

    return finalize(cfg, rig, std::move(result), measure_cycles,
                    host0, co0);
}

} // namespace datacenter
} // namespace protean
