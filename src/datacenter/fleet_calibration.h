/**
 * @file
 * Fleet-calibrated scale-out analysis (Figures 17-18).
 *
 * The analytic scale-out model (scaleout.h) consumes per-application
 * batch utilizations; historically those came from independent
 * single-server colocation runs. This module measures them from a
 * real (small-N) fleet instead: serversPerApp colocation cells per
 * mix member — each a full server with its latency-sensitive
 * co-runner, PC3D runtime and QoS control — advance in lockstep
 * while sharing one fleet compilation service, so the utilization
 * fed into Figure 17/18 reflects compile costs as a warehouse
 * deployment would actually pay them (amortized across servers,
 * paper Section V-E) rather than each server compiling alone.
 */

#ifndef PROTEAN_DATACENTER_FLEET_CALIBRATION_H
#define PROTEAN_DATACENTER_FLEET_CALIBRATION_H

#include <string>
#include <vector>

#include "datacenter/experiment.h"
#include "datacenter/scaleout.h"
#include "fleet/service.h"

namespace protean {
namespace datacenter {

/** Fleet-run parameters for one mix calibration. */
struct FleetMixConfig
{
    /** Latency-sensitive co-runner on every server. */
    std::string service = "web-search";
    double qosTarget = 0.95;
    double qps = 60.0;
    /** Colocation cells per mix member. */
    uint32_t serversPerApp = 2;
    /** Warmup + search time before measuring (per cell). */
    double settleMs = 6000.0;
    double measureMs = 4000.0;
    /** Shared compilation service configuration. */
    fleet::ServiceConfig compileService;
    /** false = every server compiles locally (comparison runs). */
    bool remoteBackend = true;
    /** Cost of installing a service-delivered variant. */
    uint64_t installCycles = 100;
    sim::MachineConfig machine;
};

/** One fleet-calibrated mix analysis. */
struct FleetMixResult
{
    /** Per-member mean utilization (order follows the mix). */
    std::vector<double> utils;
    /** Per-member mean QoS (order follows the mix). */
    std::vector<double> qos;
    /** Compilation-service counters over the whole run. */
    fleet::ServiceStats service;
    /** Compile cycles charged to servers (install costs, or full
     *  compiles when remoteBackend is off). */
    uint64_t serverCompileCycles = 0;
    /** The analytic model applied to the fleet-measured utils. */
    ScaleOutResult scaleout;
};

/**
 * Run a small-N fleet for one batch mix and feed the measured
 * utilizations through analyzeMix.
 * @param service_name Webservice name (co-runner and labeling).
 * @param mix_name Batch-mix label (Table III: WL1-WL3).
 * @param batches The mix's member batch applications.
 */
FleetMixResult analyzeMixFromFleet(const std::string &service_name,
                                   const std::string &mix_name,
                                   const std::vector<std::string>
                                       &batches,
                                   const ScaleOutParams &params
                                   = ScaleOutParams{},
                                   const FleetMixConfig &fcfg
                                   = FleetMixConfig{});

} // namespace datacenter
} // namespace protean

#endif // PROTEAN_DATACENTER_FLEET_CALIBRATION_H
