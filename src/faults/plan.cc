#include "faults/plan.h"

#include <algorithm>

#include "support/logging.h"

namespace protean {
namespace faults {

namespace {

/** Domain-separation tags for the pure decision hashes. */
constexpr uint64_t kTagDrop = 0xd209;
constexpr uint64_t kTagDelay = 0xde1a;
constexpr uint64_t kTagRespCorrupt = 0xc027;
constexpr uint64_t kTagCacheCorrupt = 0xcac4;
constexpr uint64_t kTagPause = 0x9a05;
constexpr uint64_t kTagShardStream = 0x54a2;
constexpr uint64_t kTagMiscompile = 0xbadc;
constexpr uint64_t kTagMiscompileShape = 0x5a9e;

} // namespace

const char *
miscompileKindName(MiscompileKind k)
{
    switch (k) {
      case MiscompileKind::DroppedStore: return "dropped-store";
      case MiscompileKind::FlippedNtBit: return "flipped-nt-bit";
      case MiscompileKind::SwappedOperand: return "swapped-operand";
    }
    return "?";
}

FaultPlan::FaultPlan(const FaultConfig &cfg)
    : cfg_(cfg), enabled_(cfg.anyEnabled())
{
}

uint64_t
FaultPlan::hashBits(uint64_t tag, uint64_t a, uint64_t b) const
{
    uint64_t h = mix64(cfg_.seed ^ mix64(tag));
    h = mix64(h ^ mix64(a));
    return mix64(h ^ mix64(b));
}

double
FaultPlan::hash01(uint64_t tag, uint64_t a, uint64_t b) const
{
    return static_cast<double>(hashBits(tag, a, b) >> 11) *
        0x1.0p-53;
}

FaultPlan::ShardSchedule &
FaultPlan::sched(uint32_t shard)
{
    auto it = shards_.find(shard);
    if (it != shards_.end())
        return it->second;
    ShardSchedule s;
    s.rng = Rng(mix64(cfg_.seed ^ mix64(kTagShardStream + shard)));
    return shards_.emplace(shard, std::move(s)).first->second;
}

void
FaultPlan::extend(ShardSchedule &s, uint64_t up_to)
{
    if (cfg_.shardCrashMeanCycles <= 0.0) {
        s.horizon = std::max(s.horizon, up_to);
        return; // manual outages only
    }
    while (s.horizon <= up_to) {
        uint64_t up = std::max<uint64_t>(
            1, static_cast<uint64_t>(
                   s.rng.nextExponential(cfg_.shardCrashMeanCycles)));
        ShardOutage o;
        o.at = s.lastEnd + up;
        o.until = o.at + std::max<uint64_t>(1, cfg_.shardRestartCycles);
        s.outages.push_back(o);
        s.lastEnd = o.until;
        s.horizon = o.until;
    }
}

void
FaultPlan::addShardOutage(uint32_t shard, uint64_t at, uint64_t until)
{
    if (until <= at)
        fatal("FaultPlan: outage must end after it starts");
    ShardSchedule &s = sched(shard);
    if (!s.outages.empty() && at < s.outages.back().until)
        fatal("FaultPlan: outages must be scripted in order");
    s.outages.push_back(ShardOutage{at, until});
    s.lastEnd = until;
    enabled_ = true;
}

bool
FaultPlan::shardDownAt(uint32_t shard, uint64_t cycle)
{
    if (!enabled_)
        return false;
    ShardSchedule &s = sched(shard);
    extend(s, cycle);
    // Outages are ordered and non-overlapping: find the first one
    // ending after `cycle` and check containment.
    auto it = std::upper_bound(
        s.outages.begin(), s.outages.end(), cycle,
        [](uint64_t c, const ShardOutage &o) { return c < o.until; });
    return it != s.outages.end() && it->at <= cycle;
}

const ShardOutage *
FaultPlan::peekOutage(uint32_t shard, uint64_t up_to)
{
    if (!enabled_)
        return nullptr;
    ShardSchedule &s = sched(shard);
    extend(s, up_to);
    if (s.cursor >= s.outages.size() ||
        s.outages[s.cursor].at > up_to)
        return nullptr;
    return &s.outages[s.cursor];
}

void
FaultPlan::consumeOutage(uint32_t shard)
{
    ShardSchedule &s = sched(shard);
    if (s.cursor >= s.outages.size())
        panic("FaultPlan: consumeOutage with nothing pending");
    ++s.cursor;
}

bool
FaultPlan::dropRequest(uint64_t seq) const
{
    return cfg_.requestDropProb > 0.0 &&
        hash01(kTagDrop, seq, 0) < cfg_.requestDropProb;
}

uint64_t
FaultPlan::requestDelay(uint64_t seq) const
{
    if (cfg_.requestDelayProb <= 0.0)
        return 0;
    return hash01(kTagDelay, seq, 0) < cfg_.requestDelayProb ?
        cfg_.requestDelayCycles : 0;
}

bool
FaultPlan::corruptResponse(uint64_t seq) const
{
    return cfg_.responseCorruptProb > 0.0 &&
        hash01(kTagRespCorrupt, seq, 0) < cfg_.responseCorruptProb;
}

bool
FaultPlan::corruptCachedEntry(uint64_t key, uint64_t cycle) const
{
    return cfg_.cacheCorruptProb > 0.0 &&
        hash01(kTagCacheCorrupt, key, cycle) < cfg_.cacheCorruptProb;
}

void
FaultPlan::addMiscompile(uint64_t key, uint32_t attempt,
                         const MiscompileSpec &spec)
{
    scriptedMiscompiles_[{key, attempt}] = spec;
    enabled_ = true;
}

bool
FaultPlan::miscompile(uint64_t key, uint32_t attempt,
                      MiscompileSpec *out) const
{
    auto it = scriptedMiscompiles_.find({key, attempt});
    if (it != scriptedMiscompiles_.end()) {
        if (out)
            *out = it->second;
        return true;
    }
    if (cfg_.miscompileProb <= 0.0 ||
        hash01(kTagMiscompile, key, attempt) >= cfg_.miscompileProb)
        return false;
    if (out) {
        uint64_t shape = hashBits(kTagMiscompileShape, key, attempt);
        out->kind = static_cast<MiscompileKind>(
            shape % kNumMiscompileKinds);
        out->siteSeed = shape >> 8;
    }
    return true;
}

uint64_t
FaultPlan::serverPauseCycles(uint32_t server,
                             uint64_t quantum_start) const
{
    if (cfg_.serverPauseProb <= 0.0)
        return 0;
    return hash01(kTagPause, server, quantum_start) <
            cfg_.serverPauseProb ?
        cfg_.serverPauseCycles : 0;
}

} // namespace faults
} // namespace protean
