/**
 * @file
 * Deterministic, seeded fault injection for the fleet.
 *
 * Warehouse-scale operation means shards crash, requests vanish in
 * the network, payloads arrive corrupted, and whole servers pause
 * (GC, live migration, kernel hiccups). A FaultPlan is a *seeded
 * schedule* of those events, consulted by fleet::Cluster and
 * fleet::CompileService at quantum barriers, so a faulted run is as
 * reproducible as a benign one — byte-identical metrics and traces
 * across repeats, serial or parallel (DESIGN.md §9).
 *
 * Two kinds of decision, with different determinism mechanics:
 *
 *  - *Schedules* (shard outages) are generated lazily from per-shard
 *    forked Rng streams: exponential up-times, fixed restart delay.
 *    Only the coordinator consults them (inside
 *    CompileService::advance()), so lazy extension needs no locking.
 *
 *  - *Pure decisions* (drop/delay/corrupt a request, pause a server
 *    in a quantum) are stateless hashes of (seed, identity): any
 *    thread may evaluate them, in any order, and always gets the
 *    same answer. This is what keeps parallel fleet stepping
 *    byte-identical to serial under fault injection — no shared RNG
 *    stream whose consumption order could differ.
 */

#ifndef PROTEAN_FAULTS_PLAN_H
#define PROTEAN_FAULTS_PLAN_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "support/random.h"

namespace protean {
namespace faults {

/** Fault rates and magnitudes. All cycle values are simulated
 *  cycles; probabilities are per-event. Zero everywhere = benign. */
struct FaultConfig
{
    /** Root seed for every fault stream (independent of the
     *  workload seed, so fault placement can be varied alone). */
    uint64_t seed = 0x5eedfa01;

    /** Mean shard up-time between crashes (0 = shards never crash).
     *  Each shard draws its own exponential crash schedule. */
    double shardCrashMeanCycles = 0.0;
    /** Downtime per crash before the shard restarts (empty). */
    uint64_t shardRestartCycles = 20000;

    /** Probability a request is dropped in transit (no response;
     *  the client's timeout is the only signal). */
    double requestDropProb = 0.0;
    /** Probability a request is delayed in transit... */
    double requestDelayProb = 0.0;
    /** ...by this many cycles. */
    uint64_t requestDelayCycles = 2000;

    /** Probability a response payload is corrupted in transit
     *  (client-side checksum rejects it). */
    double responseCorruptProb = 0.0;
    /** Probability a cached variant is corrupted at rest on install
     *  (service-side checksum rejects it on the next hit and
     *  recompiles). */
    double cacheCorruptProb = 0.0;

    /** Probability a given server pauses in a given quantum (GC /
     *  migration blackout; its cores make no progress)... */
    double serverPauseProb = 0.0;
    /** ...for this many cycles. */
    uint64_t serverPauseCycles = 10000;

    /** Probability a service-side compile emerges *miscompiled*
     *  (a seeded semantic mutation of the variant's instruction
     *  stream — see validate::applyMiscompile). Checksums cannot
     *  catch these; only the translation-validation install gate
     *  does (DESIGN.md §12). */
    double miscompileProb = 0.0;

    /** True when any fault rate is non-zero. */
    bool anyEnabled() const
    {
        return shardCrashMeanCycles > 0.0 || requestDropProb > 0.0 ||
            requestDelayProb > 0.0 || responseCorruptProb > 0.0 ||
            cacheCorruptProb > 0.0 || serverPauseProb > 0.0 ||
            miscompileProb > 0.0;
    }
};

/** One shard outage: crashes at `at`, restarts at `until`. */
struct ShardOutage
{
    uint64_t at = 0;
    uint64_t until = 0;
};

/** The classes of compiler bug the miscompile stream injects. Each
 *  mutates the produced instruction stream in a way a byte checksum
 *  is blind to (the bytes are self-consistent — just wrong). */
enum class MiscompileKind : uint8_t {
    /** A store silently becomes a no-op (dead-store elimination gone
     *  wrong). */
    DroppedStore,
    /** A load's non-temporal bit disagrees with the requested mask
     *  (the NT transform itself misapplied). */
    FlippedNtBit,
    /** A non-commutative operation's sources swapped (operand-order
     *  bug). */
    SwappedOperand,
};

constexpr uint32_t kNumMiscompileKinds = 3;

const char *miscompileKindName(MiscompileKind k);

/** One injected miscompile: what kind of mutation, and a seed that
 *  picks the mutation site among the eligible instructions. */
struct MiscompileSpec
{
    MiscompileKind kind = MiscompileKind::DroppedStore;
    uint64_t siteSeed = 0;
};

/**
 * The seeded fault schedule.
 *
 * Coordinator-only methods (outage schedule access) lazily extend
 * per-shard streams and must be called from the thread driving
 * CompileService::advance(). Pure decision methods are const,
 * stateless, and safe from any thread.
 */
class FaultPlan
{
  public:
    /** A benign plan: no faults, every query says "no". */
    FaultPlan() = default;

    explicit FaultPlan(const FaultConfig &cfg);

    const FaultConfig &config() const { return cfg_; }

    /** True when this plan can ever inject anything. */
    bool enabled() const { return enabled_; }

    /**
     * Script an outage by hand (tests, targeted experiments).
     * Outages must be appended in increasing time order per shard
     * and must not overlap; scripting mixes with generated outages
     * only if the crash stream is disabled (shardCrashMeanCycles 0).
     */
    void addShardOutage(uint32_t shard, uint64_t at, uint64_t until);

    /**
     * Script a miscompile for one (content key, compile attempt)
     * pair (tests, targeted experiments). Scripted entries win over
     * the probabilistic stream for their exact pair.
     */
    void addMiscompile(uint64_t key, uint32_t attempt,
                       const MiscompileSpec &spec);

    // ----- coordinator-only schedule access -----

    /** Is the shard inside an outage window at `cycle`?
     *  (Lazily extends the shard's schedule through `cycle`.) */
    bool shardDownAt(uint32_t shard, uint64_t cycle);

    /** Next unconsumed outage with crash cycle <= up_to, or nullptr.
     *  The service consumes one outage per crash it applies. */
    const ShardOutage *peekOutage(uint32_t shard, uint64_t up_to);

    /** Mark the outage returned by peekOutage as applied. */
    void consumeOutage(uint32_t shard);

    // ----- pure decisions (thread-safe, order-independent) -----

    /** Request `seq` is dropped in transit. */
    bool dropRequest(uint64_t seq) const;

    /** Transit delay for request `seq` (0 = on time). */
    uint64_t requestDelay(uint64_t seq) const;

    /** Response to request `seq` is corrupted in transit. */
    bool corruptResponse(uint64_t seq) const;

    /** Variant `key` installed at `cycle` is corrupted at rest. */
    bool corruptCachedEntry(uint64_t key, uint64_t cycle) const;

    /** Cycles server `server` pauses in the quantum starting at
     *  `quantum_start` (0 = no pause). */
    uint64_t serverPauseCycles(uint32_t server,
                               uint64_t quantum_start) const;

    /**
     * Does the compile of `key` on `attempt` (0 = the first try;
     * validate-gate recompiles bump it) come out miscompiled? When
     * true and `out` is non-null, *out receives the seeded mutation
     * to apply. Scripted pairs (addMiscompile) take precedence; the
     * probabilistic stream draws kind and site purely from
     * (seed, key, attempt), so serial and parallel runs inject the
     * identical bug in the identical build.
     */
    bool miscompile(uint64_t key, uint32_t attempt,
                    MiscompileSpec *out = nullptr) const;

  private:
    struct ShardSchedule
    {
        Rng rng;
        /** Schedule generated through this cycle. */
        uint64_t horizon = 0;
        /** End of the last generated outage (next up-time starts
         *  here). */
        uint64_t lastEnd = 0;
        std::vector<ShardOutage> outages;
        /** Next outage the service has not yet applied. */
        size_t cursor = 0;
    };

    FaultConfig cfg_;
    bool enabled_ = false;
    std::map<uint32_t, ShardSchedule> shards_;
    /** Scripted miscompiles keyed by (content key, attempt). */
    std::map<std::pair<uint64_t, uint32_t>, MiscompileSpec>
        scriptedMiscompiles_;

    ShardSchedule &sched(uint32_t shard);
    void extend(ShardSchedule &s, uint64_t up_to);
    /** Uniform [0,1) from a pure hash of (seed, tag, a, b). */
    double hash01(uint64_t tag, uint64_t a, uint64_t b) const;
    /** Raw 64-bit pure hash of (seed, tag, a, b). */
    uint64_t hashBits(uint64_t tag, uint64_t a, uint64_t b) const;
};

} // namespace faults
} // namespace protean

#endif // PROTEAN_FAULTS_PLAN_H
