/**
 * @file
 * Quickstart: the protean code mechanism end to end.
 *
 * Builds a tiny program in the protean IR, compiles it with pcc
 * (edge virtualization + embedded IR), runs it on the simulated
 * machine, attaches a protean runtime, compiles a non-temporal
 * variant of the hot function online, dispatches it through the EVT
 * while the program keeps running, and finally reverts it — printing
 * what happens at each step.
 *
 *   ./examples/quickstart
 */

#include <cstdio>
#include "bench/common.h"

#include "ir/builder.h"
#include "ir/printer.h"
#include "pcc/pcc.h"
#include "runtime/runtime.h"
#include "sim/machine.h"

using namespace protean;

namespace {

/** A program with one hot loop: sum += data[i] forever. */
ir::Module
buildProgram()
{
    ir::Module m("quickstart");
    ir::GlobalId data = m.addGlobal("data", 1 << 16);
    ir::GlobalId out = m.addGlobal("out", 8);
    ir::IRBuilder b(m);

    // hot(): one pass over the array.
    b.startFunction("hot", 0);
    ir::Reg base = b.globalAddr(data);
    ir::Reg obase = b.globalAddr(out);
    ir::Reg mask = b.constInt((1 << 16) - 64);
    ir::Reg stride = b.constInt(64);
    ir::Reg n = b.constInt(512);
    ir::Reg one = b.constInt(1);
    ir::Reg i = b.constInt(0);
    ir::Reg cur = b.constInt(0);
    ir::Reg sum = b.constInt(0);
    ir::Reg addr = b.func().newReg();
    ir::Reg x = b.func().newReg();
    b.func().noteReg(addr);
    b.func().noteReg(x);
    ir::BlockId loop = b.newBlock();
    ir::BlockId done = b.newBlock();
    b.br(loop);
    b.setBlock(loop);
    b.binaryInto(addr, ir::Opcode::And, cur, mask);
    b.binaryInto(addr, ir::Opcode::Add, addr, base);
    b.loadInto(x, addr);
    b.binaryInto(sum, ir::Opcode::Add, sum, x);
    b.binaryInto(cur, ir::Opcode::Add, cur, stride);
    b.binaryInto(i, ir::Opcode::Add, i, one);
    ir::Reg c = b.cmpLt(i, n);
    b.condBr(c, loop, done);
    b.setBlock(done);
    b.store(obase, sum);
    b.ret();

    // main(): call hot() forever.
    b.startFunction("main", 0);
    ir::BlockId l = b.newBlock();
    b.br(l);
    b.setBlock(l);
    b.callVoid(0);
    b.br(l);
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsConfig obs_cfg = bench::parseObsArgs(argc, argv);
    // 1. Build the program and compile it with pcc.
    ir::Module module = buildProgram();
    std::printf("=== program IR ===\n%s\n",
                ir::toString(module).c_str());

    isa::Image image = pcc::compile(module);
    std::printf("pcc: %zu machine instructions, EVT slots: %u, "
                "embedded IR: %llu bytes (compressed)\n\n",
                image.code.size(), image.evtCount,
                static_cast<unsigned long long>(image.irSizeBytes));

    // 2. Load it on a simulated server and let it run.
    sim::Machine machine;
    sim::Process &proc = machine.load(image, 0);
    machine.runFor(machine.msToCycles(20));
    std::printf("after 20ms: %llu instructions retired, "
                "0 hint instructions (original code)\n",
                static_cast<unsigned long long>(
                    machine.core(0).hpm().instructions));

    // 3. Attach the protean runtime (discovers the EVT and IR).
    runtime::RuntimeOptions opts;
    opts.runtimeCore = 1; // compile work on a spare core
    runtime::ProteanRuntime rt(machine, proc, opts);
    rt.start();
    std::printf("runtime attached: %zu functions re-hydrated from "
                "the embedded IR\n\n", rt.module().numFunctions());

    // 4. Request a fully non-temporal variant of hot() and dispatch
    //    it. The host keeps running while the variant compiles.
    ir::FuncId hot = rt.module().findFunction("hot")->id();
    BitVector mask(rt.module().numLoads(), true);
    rt.deployVariant(hot, mask, [&] {
        std::printf("variant dispatched at t=%.1fms (EVT retarget; "
                    "host never paused)\n",
                    machine.config().cyclesToMs(machine.now()));
    });
    machine.runFor(machine.msToCycles(50));

    uint64_t hints = machine.core(0).hpm().hints;
    std::printf("after 50ms more: %llu prefetchnta-style hints "
                "executed -> the NT variant is live\n",
                static_cast<unsigned long long>(hints));

    // 5. Revert to the original code: one atomic EVT write.
    rt.revertAll();
    uint64_t before = machine.core(0).hpm().hints;
    machine.runFor(machine.msToCycles(50));
    std::printf("after revert: %llu further hints (in-flight call "
                "only) -> original code is live again\n",
                static_cast<unsigned long long>(
                    machine.core(0).hpm().hints - before));

    std::printf("\nruntime consumed %.3f%% of server cycles\n",
                100.0 * rt.serverCycleShare());
    bench::exportObs(obs_cfg);
    return 0;
}
