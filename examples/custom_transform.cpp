/**
 * @file
 * Writing a custom protean decision engine.
 *
 * The paper positions protean code as a general mechanism: "the
 * design of protean code optimizations is in the purview of compiler
 * writers". This example implements a new engine from scratch — a
 * duty-cycled A/B experimenter that alternates between the original
 * code and an optimized variant (constant folding + DCE applied to
 * the embedded IR before lowering), measuring both live and keeping
 * whichever performs better.
 *
 *   ./examples/custom_transform
 */

#include <cstdio>
#include "bench/common.h"

#include "codegen/passes.h"
#include "ir/serializer.h"
#include "pcc/pcc.h"
#include "runtime/runtime.h"
#include "sim/machine.h"
#include "workloads/registry.h"

using namespace protean;

namespace {

/** A/B tests the original code against an IR-optimized variant. */
class AbTestEngine : public runtime::DecisionEngine
{
  public:
    void
    onStart(runtime::ProteanRuntime &rt) override
    {
        // Optimize a private copy of the embedded IR, then compile
        // every virtualized hot function from it. This is the "full
        // static compiler flexibility" property: the runtime can run
        // any IR-level pass before lowering.
        optimized_ = ir::deserialize(ir::serialize(rt.module()));
        size_t changed = codegen::optimizeModule(*optimized_);
        std::printf("engine: optimizer changed %zu instructions in "
                    "the embedded IR\n", changed);
        windowEnd_ = rt.machine().now() +
            rt.machine().msToCycles(kWindowMs);
    }

    void
    onTick(runtime::ProteanRuntime &rt) override
    {
        if (rt.machine().now() < windowEnd_)
            return;
        windowEnd_ = rt.machine().now() +
            rt.machine().msToCycles(kWindowMs);

        sim::HpmCounters w = rt.hpm().window(rt.hostCore());
        if (phase_ == 0) {
            baselineBpc_ = w.bpc();
            deployOptimized(rt);
            phase_ = 1;
        } else if (phase_ == 1) {
            ++phase_; // discard the dispatch-boundary window
        } else if (phase_ == 2) {
            optimizedBpc_ = w.bpc();
            bool keep = optimizedBpc_ > baselineBpc_;
            std::printf("engine: baseline %.4f bpc vs optimized "
                        "%.4f bpc -> keeping %s\n", baselineBpc_,
                        optimizedBpc_,
                        keep ? "optimized" : "original");
            if (!keep)
                rt.revertAll();
            phase_ = 3; // settled
        }
    }

    double baselineBpc_ = 0.0;
    double optimizedBpc_ = 0.0;

  private:
    static constexpr double kWindowMs = 150.0;

    std::unique_ptr<ir::Module> optimized_;
    int phase_ = 0;
    uint64_t windowEnd_ = 0;

    void
    deployOptimized(runtime::ProteanRuntime &rt)
    {
        // Compile from the optimized module by swapping it into a
        // private compiler (the stock deployVariant uses the
        // attachment's module; a custom engine may bring its own).
        BitVector no_hints(optimized_->numLoads());
        for (const auto &[func, slot] : rt.evt().slots()) {
            (void)slot;
            if (optimized_->function(func).name().rfind("hot_", 0) !=
                0) {
                continue;
            }
            // Lower from the optimized IR; install via the process
            // code cache and the EVT, exactly as the runtime does.
            codegen::LowerOptions lopts;
            lopts.layout = &rt.host().image().layout;
            lopts.virtualized = &rt.evt().slots();
            lopts.ntMask = &no_hints;
            codegen::LoweredFunction lowered = codegen::lowerFunction(
                *optimized_, optimized_->function(func), lopts);
            codegen::relocate(lowered, rt.host().codeSize());
            isa::CodeAddr entry = rt.host().appendCode(lowered.code);
            for (auto [offset, callee] : lowered.directCallFixups) {
                isa::MInst patched = rt.host().inst(entry + offset);
                patched.target =
                    rt.host().image().function(callee).entry;
                rt.host().patchInst(entry + offset, patched);
            }
            rt.evt().retarget(func, entry);
            std::printf("engine: dispatched optimized %s at %u\n",
                        optimized_->function(func).name().c_str(),
                        entry);
        }
    }
};

} // namespace

int
main(int argc, char **argv)
{
    bench::ObsConfig obs_cfg = bench::parseObsArgs(argc, argv);
    workloads::BatchSpec spec = workloads::batchSpec("namd");
    spec.targetStaticLoads = 0;
    ir::Module module = workloads::buildBatch(spec);
    isa::Image image = pcc::compile(module);

    sim::Machine machine;
    sim::Process &proc = machine.load(image, 0);

    runtime::RuntimeOptions opts;
    opts.runtimeCore = 1;
    runtime::ProteanRuntime rt(machine, proc, opts);
    AbTestEngine engine;
    rt.setEngine(&engine);
    rt.start();

    machine.runFor(machine.msToCycles(800));
    std::printf("\nhost retired %llu instructions; runtime share "
                "%.3f%%\n",
                static_cast<unsigned long long>(
                    machine.core(0).hpm().instructions),
                100.0 * rt.serverCycleShare());
    bench::exportObs(obs_cfg);
    return 0;
}
