/**
 * @file
 * Load-adaptive re-transformation (the Figure 16 scenario, small).
 *
 * web-search's load steps from high to low and back. PC3D detects
 * each co-phase change: at high load it dispatches a non-temporal
 * variant of the batch; at low load it reverts to the original code
 * so the batch runs at full speed. Prints a timeline.
 *
 *   ./examples/load_adaptive
 */

#include <cstdio>
#include "bench/common.h"

#include "datacenter/experiment.h"
#include "support/logging.h"
#include "support/table.h"

using namespace protean;

int
main(int argc, char **argv)
{
    bench::ObsConfig obs_cfg = bench::parseObsArgs(argc, argv);
    datacenter::ColoConfig cfg;
    cfg.service = "web-search";
    cfg.batch = "libquantum";
    cfg.qosTarget = 0.95;
    cfg.system = datacenter::System::Pc3d;
    cfg.qpsTrace = {{0.0, 130.0}, {12'000.0, 10.0},
                    {24'000.0, 130.0}};
    cfg.settleMs = 30'000.0;
    cfg.measureMs = 6'000.0;

    datacenter::ColoResult r =
        datacenter::runColocationTrace(cfg, 1500.0);

    TextTable t("PC3D adapting to web-search load (libquantum host)");
    t.setHeader({"t(s)", "QPS", "Host BPS (bpc)", "QoS", "Nap",
                 "Runtime %"});
    for (const auto &s : r.trace) {
        t.addRow({strformat("%.1f", s.tMs / 1000.0),
                  strformat("%.0f", s.qps),
                  strformat("%.4f", s.hostBpc),
                  strformat("%.2f", s.qos),
                  strformat("%.2f", s.nap),
                  strformat("%.2f%%", 100 * s.runtimeShare)});
    }
    t.print();
    std::printf("\nwatch the host BPS rise during the low-load "
                "window (t=12s..24s): PC3D reverted the batch to "
                "its original code, then re-transformed it when "
                "load returned.\n");
    bench::exportObs(obs_cfg);
    return 0;
}
