/**
 * @file
 * Colocation with QoS protection: the paper's motivating scenario.
 *
 * web-search (latency-sensitive) shares a server with libquantum
 * (contentious batch). Runs the colocation three ways and prints the
 * utilization/QoS trade-off:
 *   - no mitigation: QoS collapses;
 *   - ReQoS: QoS met by napping, sacrificing batch throughput;
 *   - PC3D: QoS met with non-temporal code variants, keeping the
 *     batch fast.
 *
 *   ./examples/colocation_qos
 */

#include <cstdio>
#include "bench/common.h"

#include "datacenter/experiment.h"
#include "support/logging.h"
#include "support/table.h"

using namespace protean;

int
main(int argc, char **argv)
{
    bench::ObsConfig obs_cfg = bench::parseObsArgs(argc, argv);
    TextTable t("web-search + libquantum, 95% QoS target");
    t.setHeader({"System", "Batch utilization", "web-search QoS",
                 "Nap", "Runtime cycles"});

    for (auto [system, label] :
         {std::pair{datacenter::System::None, "No mitigation"},
          std::pair{datacenter::System::ReQos, "ReQoS (nap only)"},
          std::pair{datacenter::System::Pc3d, "PC3D (protean)"}}) {
        datacenter::ColoConfig cfg;
        cfg.service = "web-search";
        cfg.batch = "libquantum";
        cfg.qosTarget = 0.95;
        cfg.qps = 120.0;
        cfg.system = system;
        cfg.settleMs = 5000.0;
        cfg.measureMs = 3000.0;
        datacenter::ColoResult r = datacenter::runColocation(cfg);
        t.addRow({label,
                  strformat("%.0f%%", 100 * r.utilization),
                  strformat("%.0f%%", 100 * r.qos),
                  strformat("%.2f", r.nap),
                  strformat("%.2f%%", 100 * r.runtimeShare)});
    }
    t.print();
    std::printf("\nPC3D keeps the batch near full speed while "
                "protecting the co-runner; ReQoS must trade batch "
                "throughput for the same protection.\n");
    bench::exportObs(obs_cfg);
    return 0;
}
